package service

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// wallBuckets are the job wall-time histogram's upper bounds in seconds.
// Scaled interactive cells land in the millisecond buckets; full-budget
// paper cells in the seconds-to-minutes tail.
var wallBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// metrics aggregates the daemon's counters for the Prometheus-text
// /metrics endpoint. Queue depth, in-flight jobs and cache statistics are
// sampled live at render time from the pool and cache; only job outcomes
// and the wall-time histogram accumulate here.
type metrics struct {
	mu           sync.Mutex
	jobsDone     uint64
	jobsFailed   uint64
	jobsCanceled uint64
	simCycles    uint64 // cycles simulated by fresh (non-cached) runs
	jobPanics    uint64 // run bodies that panicked (recovered into failed jobs)

	progressEvents   uint64 // progress frames published to job event streams
	telemetrySamples uint64 // flight-recorder rows captured across sampled jobs
	sseActive        int64  // live /v1/jobs/{id}/events streams
	sseDropped       uint64 // frames dropped on full subscriber buffers

	wallCounts []uint64 // len(wallBuckets)+1 slots; last is the +Inf overflow
	wallSum    float64
	wallTotal  uint64

	// http holds the per-endpoint SLO series (slo.go); sloObjective is
	// the availability objective burn rates are computed against.
	http         map[string]*endpointStats
	sloObjective float64
}

// observePanic counts a recovered run-body panic.
func (m *metrics) observePanic() {
	m.mu.Lock()
	m.jobPanics++
	m.mu.Unlock()
}

// observeProgress counts one published progress frame.
func (m *metrics) observeProgress() {
	m.mu.Lock()
	m.progressEvents++
	m.mu.Unlock()
}

// observeTelemetry accumulates a finished job's sample-row count.
func (m *metrics) observeTelemetry(samples int) {
	m.mu.Lock()
	m.telemetrySamples += uint64(samples)
	m.mu.Unlock()
}

// sseStart/sseEnd track live event streams.
func (m *metrics) sseStart() {
	m.mu.Lock()
	m.sseActive++
	m.mu.Unlock()
}

func (m *metrics) sseEnd() {
	m.mu.Lock()
	m.sseActive--
	m.mu.Unlock()
}

// observeSSEDrop counts one frame dropped on a full subscriber buffer
// (the broadcaster's keep-the-stream-live backpressure path).
func (m *metrics) observeSSEDrop() {
	m.mu.Lock()
	m.sseDropped++
	m.mu.Unlock()
}

// observeJob records one finished pool job.
func (m *metrics) observeJob(status string, wall time.Duration, cycles uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch status {
	case statusDone:
		m.jobsDone++
		m.simCycles += cycles
	case statusCanceled:
		m.jobsCanceled++
	default:
		m.jobsFailed++
	}
	if m.wallCounts == nil {
		m.wallCounts = make([]uint64, len(wallBuckets)+1)
	}
	secs := wall.Seconds()
	i := 0
	for i < len(wallBuckets) && secs > wallBuckets[i] {
		i++
	}
	m.wallCounts[i]++
	m.wallSum += secs
	m.wallTotal++
}

// render writes the Prometheus text exposition. queued/queueCap/inFlight
// and cs are the live gauges sampled by the caller.
func (m *metrics) render(w io.Writer, queued, queueCap, inFlight int, cs CacheStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP aosd_queue_depth Simulation jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE aosd_queue_depth gauge\n")
	fmt.Fprintf(w, "aosd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# HELP aosd_queue_capacity Configured pending-job queue bound.\n")
	fmt.Fprintf(w, "# TYPE aosd_queue_capacity gauge\n")
	fmt.Fprintf(w, "aosd_queue_capacity %d\n", queueCap)
	fmt.Fprintf(w, "# HELP aosd_inflight_jobs Simulation jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE aosd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "aosd_inflight_jobs %d\n", inFlight)

	fmt.Fprintf(w, "# HELP aosd_jobs_total Finished jobs by outcome.\n")
	fmt.Fprintf(w, "# TYPE aosd_jobs_total counter\n")
	fmt.Fprintf(w, "aosd_jobs_total{status=\"done\"} %d\n", m.jobsDone)
	fmt.Fprintf(w, "aosd_jobs_total{status=\"failed\"} %d\n", m.jobsFailed)
	fmt.Fprintf(w, "aosd_jobs_total{status=\"canceled\"} %d\n", m.jobsCanceled)

	fmt.Fprintf(w, "# HELP aosd_cache_hits_total Result-cache hits (including disk hits).\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_hits_total counter\n")
	fmt.Fprintf(w, "aosd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP aosd_cache_disk_hits_total Result-cache hits served from the spill directory.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_disk_hits_total counter\n")
	fmt.Fprintf(w, "aosd_cache_disk_hits_total %d\n", cs.DiskHits)
	fmt.Fprintf(w, "# HELP aosd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_misses_total counter\n")
	fmt.Fprintf(w, "aosd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP aosd_cache_evictions_total Entries evicted from the in-memory LRU.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "aosd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# HELP aosd_cache_entries Entries resident in memory.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_entries gauge\n")
	fmt.Fprintf(w, "aosd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP aosd_cache_bytes Bytes resident in memory.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_bytes gauge\n")
	fmt.Fprintf(w, "aosd_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "# HELP aosd_cache_budget_bytes Configured in-memory LRU byte budget.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_budget_bytes gauge\n")
	fmt.Fprintf(w, "aosd_cache_budget_bytes %d\n", cs.BudgetBytes)
	fmt.Fprintf(w, "# HELP aosd_cache_hit_rate Hits over lookups since start.\n")
	fmt.Fprintf(w, "# TYPE aosd_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "aosd_cache_hit_rate %g\n", cs.HitRate())

	fmt.Fprintf(w, "# HELP aosd_sim_cycles_total Simulated cycles computed by fresh runs.\n")
	fmt.Fprintf(w, "# TYPE aosd_sim_cycles_total counter\n")
	fmt.Fprintf(w, "aosd_sim_cycles_total %d\n", m.simCycles)

	fmt.Fprintf(w, "# HELP aosd_job_panics_total Run bodies that panicked (recovered into failed jobs).\n")
	fmt.Fprintf(w, "# TYPE aosd_job_panics_total counter\n")
	fmt.Fprintf(w, "aosd_job_panics_total %d\n", m.jobPanics)
	fmt.Fprintf(w, "# HELP aosd_progress_events_total Progress frames published to job event streams.\n")
	fmt.Fprintf(w, "# TYPE aosd_progress_events_total counter\n")
	fmt.Fprintf(w, "aosd_progress_events_total %d\n", m.progressEvents)
	fmt.Fprintf(w, "# HELP aosd_telemetry_samples_total Flight-recorder rows captured by sampled jobs.\n")
	fmt.Fprintf(w, "# TYPE aosd_telemetry_samples_total counter\n")
	fmt.Fprintf(w, "aosd_telemetry_samples_total %d\n", m.telemetrySamples)
	fmt.Fprintf(w, "# HELP aosd_sse_streams Live job event streams.\n")
	fmt.Fprintf(w, "# TYPE aosd_sse_streams gauge\n")
	fmt.Fprintf(w, "aosd_sse_streams %d\n", m.sseActive)
	fmt.Fprintf(w, "# HELP aosd_sse_dropped_frames_total Frames dropped on full subscriber buffers.\n")
	fmt.Fprintf(w, "# TYPE aosd_sse_dropped_frames_total counter\n")
	fmt.Fprintf(w, "aosd_sse_dropped_frames_total %d\n", m.sseDropped)

	fmt.Fprintf(w, "# HELP aosd_job_wall_seconds Wall time of finished jobs.\n")
	fmt.Fprintf(w, "# TYPE aosd_job_wall_seconds histogram\n")
	counts := m.wallCounts
	if counts == nil {
		counts = make([]uint64, len(wallBuckets)+1)
	}
	cum := uint64(0)
	for i, le := range wallBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "aosd_job_wall_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += counts[len(wallBuckets)]
	fmt.Fprintf(w, "aosd_job_wall_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "aosd_job_wall_seconds_sum %g\n", m.wallSum)
	fmt.Fprintf(w, "aosd_job_wall_seconds_count %d\n", m.wallTotal)

	m.renderSLO(w)
}
