package mem

import (
	"reflect"
	"testing"
)

// TestSnapshotFreezesContents: writes after Snapshot must not leak into
// the snapshot's view, whole-page or sub-word.
func TestSnapshotFreezesContents(t *testing.T) {
	m := New()
	m.WriteU64(0x1000, 0xAAAA)
	m.WriteU64(0x2000, 0xBBBB)
	s := m.Snapshot()

	m.WriteU64(0x1000, 0xDEAD) // dirty an existing page
	m.WriteU8(0x2004, 0xFF)    // sub-word write on another
	m.WriteU64(0x3000, 0xCCCC) // materialize a new page
	m.Zero(0x2000, 8)          // zero through a shared page
	m.Copy(0x1100, 0x3000, 8)  // copy into a shared page

	r := New()
	r.Restore(s)
	if got := r.ReadU64(0x1000); got != 0xAAAA {
		t.Fatalf("restored 0x1000 = %#x, want 0xAAAA", got)
	}
	if got := r.ReadU64(0x2000); got != 0xBBBB {
		t.Fatalf("restored 0x2000 = %#x, want 0xBBBB", got)
	}
	if got := r.ReadU64(0x3000); got != 0 {
		t.Fatalf("restored 0x3000 = %#x, want 0 (page did not exist)", got)
	}
	if got := r.PagesTouched(); got != 2 {
		t.Fatalf("restored PagesTouched = %d, want 2", got)
	}
	// The live space saw all its writes.
	if got := m.ReadU64(0x1000); got != 0xDEAD {
		t.Fatalf("live 0x1000 = %#x, want 0xDEAD", got)
	}
	if got := m.ReadU64(0x2000); got != 0 {
		t.Fatalf("live 0x2000 = %#x, want 0 after Zero", got)
	}
}

// TestSnapshotRestoreThenDiverge: two spaces restored from one snapshot
// diverge independently without corrupting each other or the snapshot.
func TestSnapshotRestoreThenDiverge(t *testing.T) {
	m := New()
	for a := uint64(0); a < 4*PageSize; a += 8 {
		m.WriteU64(a, a)
	}
	s := m.Snapshot()

	a, b := New(), New()
	a.Restore(s)
	b.Restore(s)
	a.WriteU64(0, 111)
	b.WriteU64(0, 222)
	if got := a.ReadU64(0); got != 111 {
		t.Fatalf("a = %d, want 111", got)
	}
	if got := b.ReadU64(0); got != 222 {
		t.Fatalf("b = %d, want 222", got)
	}
	c := New()
	c.Restore(s)
	if got := c.ReadU64(0); got != 0 {
		t.Fatalf("snapshot corrupted: c = %d, want 0", got)
	}
	// Unwritten pages still share backing arrays (the point of COW).
	if a.pages[1] != b.pages[1] || a.pages[1] != s.pages[1] {
		t.Fatal("clean pages should share one backing array")
	}
}

// TestMemorySnapshotComplete is the reflection guard: every Memory field
// must be classified as snapshotted or explicitly operational, so a new
// field cannot silently escape checkpoints.
func TestMemorySnapshotComplete(t *testing.T) {
	covered := map[string]bool{
		"pages":        true,
		"pagesTouched": true,
	}
	operational := map[string]bool{
		// shared is COW bookkeeping for the live side; a snapshot's view
		// never needs it (State is immutable by construction).
		"shared": true,
	}
	typ := reflect.TypeOf(Memory{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if covered[name] == operational[name] {
			t.Errorf("mem.Memory field %q is not classified as snapshotted or operational; update Snapshot/Restore and this test", name)
		}
	}
	// And the converse: State must mirror the covered set.
	st := reflect.TypeOf(State{})
	if st.NumField() != len(covered) {
		t.Errorf("mem.State has %d fields, covered set has %d; keep them in sync", st.NumField(), len(covered))
	}
}
