// Package mem provides the simulated flat virtual address space that every
// architectural structure in the reproduction lives in: heap chunks and
// their allocator metadata, the hashed bounds table, and the Watchdog
// baseline's shadow metadata. It is a sparse, page-granular store so that
// the modeled 46-bit address space costs only what is touched.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageBits is the log2 of the backing page size.
const PageBits = 12

// PageSize is the backing page size in bytes.
const PageSize = 1 << PageBits

const offMask = PageSize - 1

// Memory is a sparse byte-addressable address space. The zero value is not
// usable; call New.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// PagesTouched counts distinct pages ever materialized (memory
	// footprint proxy).
	pagesTouched uint64

	// shared lists pages whose backing arrays are co-owned by a Snapshot
	// (copy-on-write): a write to a shared page copies it first, so the
	// snapshot's view stays frozen while the live space moves on. nil —
	// the common case for spaces that were never snapshotted — keeps the
	// write path at a single pointer compare.
	shared map[uint64]struct{}
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	pn := addr >> PageBits
	p := m.pages[pn]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[pn] = p
		m.pagesTouched++
	}
	return p
}

// wpage is page for mutating callers: it additionally unshares a page
// co-owned by a snapshot before handing it out, so every write path is a
// copy-on-write point. Newly materialized pages are private by
// construction (a snapshot can only hold pages that existed when it was
// taken).
func (m *Memory) wpage(addr uint64, create bool) *[PageSize]byte {
	pn := addr >> PageBits
	p := m.pages[pn]
	if p == nil {
		if !create {
			return nil
		}
		p = new([PageSize]byte)
		m.pages[pn] = p
		m.pagesTouched++
		return p
	}
	if m.shared != nil {
		if _, ok := m.shared[pn]; ok {
			q := *p
			p = &q
			m.pages[pn] = p
			delete(m.shared, pn)
		}
	}
	return p
}

// PagesTouched returns the number of distinct pages materialized so far.
func (m *Memory) PagesTouched() uint64 { return m.pagesTouched }

// FootprintBytes returns the touched footprint in bytes.
func (m *Memory) FootprintBytes() uint64 { return m.pagesTouched * PageSize }

// ReadU8 reads one byte; untouched memory reads as zero.
func (m *Memory) ReadU8(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&offMask]
	}
	return 0
}

// WriteU8 writes one byte.
func (m *Memory) WriteU8(addr uint64, v byte) {
	m.wpage(addr, true)[addr&offMask] = v
}

// ReadU64 reads a little-endian 64-bit word.
func (m *Memory) ReadU64(addr uint64) uint64 {
	off := addr & offMask
	if off <= PageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off : off+8])
	}
	var b [8]byte
	m.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian 64-bit word.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	off := addr & offMask
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(m.wpage(addr, true)[off:off+8], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteBytes(addr, b[:])
}

// ReadU32 reads a little-endian 32-bit word.
func (m *Memory) ReadU32(addr uint64) uint32 {
	off := addr & offMask
	if off <= PageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off : off+4])
	}
	var b [4]byte
	m.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian 32-bit word.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	off := addr & offMask
	if off <= PageSize-4 {
		binary.LittleEndian.PutUint32(m.wpage(addr, true)[off:off+4], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.WriteBytes(addr, b[:])
}

// ReadBytes fills dst from memory starting at addr.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & offMask
		n := PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & offMask
		n := PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.wpage(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// Zero clears size bytes starting at addr. Pages never materialized are
// left absent — they already read as zero, and creating them here would
// both inflate the footprint proxy and make zeroing a sparse region (the
// old table after an HBT migration) cost 65536 rows of page faults.
func (m *Memory) Zero(addr, size uint64) {
	for size > 0 {
		off := addr & offMask
		n := PageSize - off
		if n > size {
			n = size
		}
		if p := m.wpage(addr, false); p != nil {
			clear(p[off : off+n])
		}
		size -= n
		addr += n
	}
}

// Copy moves size bytes from src to dst (regions may not overlap
// meaningfully; used for table migration and realloc). It works a page
// run at a time and exploits sparseness: an absent source page holds
// zeros, so it only forces a clear when the destination page exists, and
// copying absent-to-absent is a no-op.
func (m *Memory) Copy(dst, src, size uint64) {
	for size > 0 {
		n := PageSize - (src & offMask)
		if r := PageSize - (dst & offMask); r < n {
			n = r
		}
		if n > size {
			n = size
		}
		soff, doff := src&offMask, dst&offMask
		if sp := m.page(src, false); sp != nil {
			copy(m.wpage(dst, true)[doff:doff+n], sp[soff:soff+n])
		} else if dp := m.wpage(dst, false); dp != nil {
			clear(dp[doff : doff+n])
		}
		src += n
		dst += n
		size -= n
	}
}

// String summarizes the space for debugging.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{%d pages, %d KiB}", m.pagesTouched, m.pagesTouched*PageSize/1024)
}
