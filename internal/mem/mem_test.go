package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteU64(t *testing.T) {
	m := New()
	f := func(addr, v uint64) bool {
		addr &= (1 << 46) - 1
		m.WriteU64(addr, v)
		return m.ReadU64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	m := New()
	if m.ReadU64(0x1234_5678_9000) != 0 || m.ReadU8(42) != 0 || m.ReadU32(1<<40) != 0 {
		t.Error("untouched memory did not read as zero")
	}
	if m.PagesTouched() != 0 {
		t.Error("reads materialized pages")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	m.WriteU64(addr, 0x1122334455667788)
	if got := m.ReadU64(addr); got != 0x1122334455667788 {
		t.Errorf("cross-page U64 = %#x", got)
	}
	m.WriteU32(uint64(2*PageSize-2), 0xA1B2C3D4)
	if got := m.ReadU32(uint64(2*PageSize - 2)); got != 0xA1B2C3D4 {
		t.Errorf("cross-page U32 = %#x", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := New()
	src := make([]byte, 3*PageSize+17)
	for i := range src {
		src[i] = byte(i * 7)
	}
	addr := uint64(5*PageSize - 100)
	m.WriteBytes(addr, src)
	dst := make([]byte, len(src))
	m.ReadBytes(addr, dst)
	if !bytes.Equal(src, dst) {
		t.Error("WriteBytes/ReadBytes round trip mismatch")
	}
}

func TestZero(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 8)
	m.WriteU64(addr, ^uint64(0))
	m.WriteU64(addr+8, ^uint64(0))
	m.Zero(addr+4, 8)
	if m.ReadU32(addr) != 0xFFFFFFFF || m.ReadU32(addr+4) != 0 ||
		m.ReadU32(addr+8) != 0 || m.ReadU32(addr+12) != 0xFFFFFFFF {
		t.Error("Zero cleared the wrong range")
	}
}

func TestCopy(t *testing.T) {
	m := New()
	src := uint64(0x1000)
	dst := uint64(0x9000)
	for i := uint64(0); i < 40; i++ {
		m.WriteU8(src+i, byte(i+1))
	}
	m.Copy(dst, src, 40)
	for i := uint64(0); i < 40; i++ {
		if m.ReadU8(dst+i) != byte(i+1) {
			t.Fatalf("Copy mismatch at +%d", i)
		}
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	m.WriteU8(0, 1)
	m.WriteU8(PageSize, 1)
	m.WriteU8(PageSize+1, 1)
	if m.PagesTouched() != 2 {
		t.Errorf("PagesTouched = %d, want 2", m.PagesTouched())
	}
	if m.FootprintBytes() != 2*PageSize {
		t.Errorf("FootprintBytes = %d", m.FootprintBytes())
	}
}
