package mem

// Snapshot/Restore support: the address space is the bulk of a machine
// checkpoint (tens of MiB for the DRAM-bound profiles), so checkpoints
// share page backing arrays with the live space instead of copying them.
// Snapshot is O(touched pages) map work; the per-page byte copies happen
// lazily, on first write to a shared page (see wpage), and only for the
// pages the continuing simulation actually dirties.

// State is a frozen view of a Memory, taken by Snapshot. It is immutable
// once created — the live space copy-on-writes away from the shared
// backing arrays — so one State can seed any number of Restores, including
// concurrently.
type State struct {
	pages        map[uint64]*[PageSize]byte
	pagesTouched uint64
}

// Pages reports the snapshot's touched-page count (footprint proxy).
func (s *State) Pages() uint64 { return s.pagesTouched }

// Snapshot freezes the current contents. The live space keeps running:
// subsequent writes copy shared pages on demand, reads are untouched.
func (m *Memory) Snapshot() *State {
	pages := make(map[uint64]*[PageSize]byte, len(m.pages))
	if m.shared == nil {
		m.shared = make(map[uint64]struct{}, len(m.pages))
	}
	for pn, p := range m.pages { //aoslint:allow mapiter — order-free: builds a map and a set, no order-dependent effects
		pages[pn] = p
		m.shared[pn] = struct{}{}
	}
	return &State{pages: pages, pagesTouched: m.pagesTouched}
}

// Restore rewinds the space to a snapshot's contents. The restored space
// shares the snapshot's backing arrays copy-on-write, so restoring is
// O(touched pages) regardless of footprint and the snapshot remains valid
// for further Restores.
func (m *Memory) Restore(s *State) {
	m.pages = make(map[uint64]*[PageSize]byte, len(s.pages))
	m.shared = make(map[uint64]struct{}, len(s.pages))
	for pn, p := range s.pages { //aoslint:allow mapiter — order-free: builds a map and a set, no order-dependent effects
		m.pages[pn] = p
		m.shared[pn] = struct{}{}
	}
	m.pagesTouched = s.pagesTouched
}
