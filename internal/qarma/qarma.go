// Package qarma implements the QARMA-64 tweakable block cipher
// (R. Avanzi, "The QARMA Block Cipher Family", ToSC 2017).
//
// QARMA is the cipher Arm suggests for computing pointer authentication
// codes (PACs) in the Armv8.3-A pointer authentication extension, and it is
// the cipher the AOS paper uses for its PAC-distribution study (§VI). This
// implementation covers the 64-bit block variant with r forward/backward
// rounds (the paper and Arm use r = 7) and all three S-box choices
// σ0, σ1 and σ2.
//
// The state is viewed as 16 4-bit cells; cell 0 is the most significant
// nibble. The cipher is a three-round Even-Mansour construction: r forward
// rounds, a pseudo-reflector, and r backward rounds, with a tweak schedule
// that permutes cells and steps a 4-bit LFSR on a fixed subset of cells.
package qarma

import "fmt"

// Sbox selects one of the three QARMA S-boxes.
type Sbox int

// The three S-box choices defined by the QARMA specification. Sigma1 is the
// recommended general-purpose choice and the AOS default.
const (
	Sigma0 Sbox = iota
	Sigma1
	Sigma2
)

// Rounds is the standard number of forward (and backward) rounds for
// QARMA-64 as deployed for pointer authentication: the Armv8.3-A PAC
// algorithm is QARMA5, i.e. r = 5 (FEAT_PACQARMA5).
const Rounds = 5

// alpha is the reflection constant.
const alpha = 0xC0AC29B7C97C50DD

// roundConstants are the per-round constants c0..c7 (digits of pi).
var roundConstants = [8]uint64{
	0x0000000000000000,
	0x13198A2E03707344,
	0xA4093822299F31D0,
	0x082EFA98EC4E6C89,
	0x452821E638D01377,
	0xBE5466CF34E90C6C,
	0x3F84D5B5B5470917,
	0x9216D5D98979FB1B,
}

// Cell shuffle tau and its inverse.
var (
	tau    = [16]int{0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2}
	tauInv = invertPerm(tau)
)

// Tweak cell permutation h and its inverse.
var (
	hPerm    = [16]int{6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11}
	hPermInv = invertPerm(hPerm)
)

// lfsrCells are the tweak cells stepped by the LFSR each round.
var lfsrCells = [7]int{0, 1, 3, 4, 8, 11, 13}

var sboxes = [3][16]uint64{
	{0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5},
	{10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4},
	{11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10},
}

func invertPerm(p [16]int) [16]int {
	var inv [16]int
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

func invertSbox(s [16]uint64) [16]uint64 {
	var inv [16]uint64
	for i, v := range s {
		inv[v] = uint64(i)
	}
	return inv
}

// Cipher is a QARMA-64 instance bound to an S-box choice, a round count and
// a 128-bit key (w0 || k0). A Cipher is immutable and safe for concurrent
// use.
type Cipher struct {
	sbox    [16]uint64
	sboxInv [16]uint64
	rounds  int
	w0, k0  uint64
}

// New returns a QARMA-64 cipher with the given S-box, rounds and key halves.
// w0 is the whitening key and k0 the core key (the 128-bit key is w0||k0).
func New(s Sbox, rounds int, w0, k0 uint64) (*Cipher, error) {
	if s < Sigma0 || s > Sigma2 {
		return nil, fmt.Errorf("qarma: invalid sbox %d", s)
	}
	if rounds < 1 || rounds > len(roundConstants) {
		return nil, fmt.Errorf("qarma: rounds must be in [1,%d], got %d", len(roundConstants), rounds)
	}
	return &Cipher{
		sbox:    sboxes[s],
		sboxInv: invertSbox(sboxes[s]),
		rounds:  rounds,
		w0:      w0,
		k0:      k0,
	}, nil
}

// MustNew is New but panics on invalid parameters; for use with constants.
func MustNew(s Sbox, rounds int, w0, k0 uint64) *Cipher {
	c, err := New(s, rounds, w0, k0)
	if err != nil {
		panic(err)
	}
	return c
}

// cell returns 4-bit cell i (cell 0 = most significant nibble).
func cell(x uint64, i int) uint64 { return (x >> (60 - 4*i)) & 0xF }

// withCell returns x with cell i replaced by v.
func withCell(x uint64, i int, v uint64) uint64 {
	sh := uint(60 - 4*i)
	return (x &^ (0xF << sh)) | (v << sh)
}

// permuteCells applies cell shuffle p: output cell i = input cell p[i].
func permuteCells(x uint64, p *[16]int) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= cell(x, p[i]) << (60 - 4*i)
	}
	return out
}

// rotCell rotates a 4-bit value left by n.
func rotCell(v uint64, n uint) uint64 {
	return ((v << n) | (v >> (4 - n))) & 0xF
}

// mixColumns multiplies the state (as a 4x4 cell matrix, row-major) by the
// involutory matrix M = circ(0, rho, rho^2, rho), where rho is a one-bit
// left rotation of a cell.
func mixColumns(x uint64) uint64 {
	var out uint64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := rotCell(cell(x, ((r+1)&3)*4+c), 1) ^
				rotCell(cell(x, ((r+2)&3)*4+c), 2) ^
				rotCell(cell(x, ((r+3)&3)*4+c), 1)
			out |= v << (60 - 4*(r*4+c))
		}
	}
	return out
}

func (q *Cipher) subCells(x uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= q.sbox[cell(x, i)] << (60 - 4*i)
	}
	return out
}

func (q *Cipher) subCellsInv(x uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= q.sboxInv[cell(x, i)] << (60 - 4*i)
	}
	return out
}

// lfsr steps one cell of the tweak: (b3,b2,b1,b0) -> (b0^b1, b3, b2, b1).
func lfsr(v uint64) uint64 {
	b0 := v & 1
	b1 := (v >> 1) & 1
	b2 := (v >> 2) & 1
	b3 := (v >> 3) & 1
	return ((b0^b1)<<3 | b3<<2 | b2<<1 | b1)
}

// lfsrInv is the inverse of lfsr.
func lfsrInv(v uint64) uint64 {
	nb3 := (v >> 3) & 1
	nb2 := (v >> 2) & 1
	nb1 := (v >> 1) & 1
	nb0 := v & 1
	b1 := nb0
	b2 := nb1
	b3 := nb2
	b0 := nb3 ^ b1
	return b3<<3 | b2<<2 | b1<<1 | b0
}

// forwardTweak advances the tweak schedule one round.
func forwardTweak(t uint64) uint64 {
	t = permuteCells(t, &hPerm)
	for _, i := range lfsrCells {
		t = withCell(t, i, lfsr(cell(t, i)))
	}
	return t
}

// backwardTweak reverses forwardTweak.
func backwardTweak(t uint64) uint64 {
	for _, i := range lfsrCells {
		t = withCell(t, i, lfsrInv(cell(t, i)))
	}
	return permuteCells(t, &hPermInv)
}

// forwardRound applies one forward round with the given tweakey. A "short"
// round (the first) omits the shuffle and MixColumns.
func (q *Cipher) forwardRound(is, tk uint64, full bool) uint64 {
	is ^= tk
	if full {
		is = permuteCells(is, &tau)
		is = mixColumns(is)
	}
	return q.subCells(is)
}

// backwardRound is the inverse of forwardRound.
func (q *Cipher) backwardRound(is, tk uint64, full bool) uint64 {
	is = q.subCellsInv(is)
	if full {
		is = mixColumns(is)
		is = permuteCells(is, &tauInv)
	}
	return is ^ tk
}

// pseudoReflect is the central non-linear reflector keyed by k1.
func (q *Cipher) pseudoReflect(is, k1 uint64) uint64 {
	is = permuteCells(is, &tau)
	is = mixColumns(is)
	is ^= k1
	return permuteCells(is, &tauInv)
}

// w1 derives the output whitening key: o(w0) = (w0 >>> 1) ^ (w0 >> 63).
func (q *Cipher) w1() uint64 {
	return ((q.w0 >> 1) | (q.w0 << 63)) ^ (q.w0 >> 63)
}

// Encrypt encrypts one 64-bit block under the given 64-bit tweak.
func (q *Cipher) Encrypt(plaintext, tweak uint64) uint64 {
	w1 := q.w1()
	k1 := q.k0

	is := plaintext ^ q.w0
	t := tweak
	for i := 0; i < q.rounds; i++ {
		is = q.forwardRound(is, q.k0^t^roundConstants[i], i != 0)
		t = forwardTweak(t)
	}

	is = q.forwardRound(is, w1^t, true)
	is = q.pseudoReflect(is, k1)
	is = q.backwardRound(is, q.w0^t, true)

	for i := q.rounds - 1; i >= 0; i-- {
		t = backwardTweak(t)
		is = q.backwardRound(is, q.k0^t^roundConstants[i]^alpha, i != 0)
	}
	return is ^ w1
}

// Decrypt inverts Encrypt for the same tweak. It is implemented as the exact
// structural inverse of Encrypt, so Decrypt(Encrypt(p, t), t) == p for all
// keys and parameters.
func (q *Cipher) Decrypt(ciphertext, tweak uint64) uint64 {
	w1 := q.w1()
	k1 := q.k0

	// Recompute the tweak schedule: tweaks[i] is the tweak used by forward
	// round i; tweaks[rounds] is the central tweak.
	tweaks := make([]uint64, q.rounds+1)
	t := tweak
	for i := 0; i < q.rounds; i++ {
		tweaks[i] = t
		t = forwardTweak(t)
	}
	tweaks[q.rounds] = t

	is := ciphertext ^ w1

	// Undo the backward rounds (in encryption they ran i = rounds-1 .. 0
	// with tweak stepping backward from the central tweak).
	t = tweaks[q.rounds]
	backTweaks := make([]uint64, q.rounds)
	for i := q.rounds - 1; i >= 0; i-- {
		t = backwardTweak(t)
		backTweaks[i] = t
	}
	for i := 0; i < q.rounds; i++ {
		is = q.invBackwardRound(is, q.k0^backTweaks[i]^roundConstants[i]^alpha, i != 0)
	}

	// Undo the central section. The reflector tau^-1 . (^k1) . M . tau has
	// inverse tau^-1 . M . (^k1) . tau, which equals the reflector keyed by
	// M(k1) because M is linear and involutory.
	is = q.invBackwardRound(is, q.w0^tweaks[q.rounds], true)
	is = q.pseudoReflect(is, mixColumns(k1))
	is = q.invForwardRound(is, w1^tweaks[q.rounds], true)

	// Undo the forward rounds.
	for i := q.rounds - 1; i >= 0; i-- {
		is = q.invForwardRound(is, q.k0^tweaks[i]^roundConstants[i], i != 0)
	}
	return is ^ q.w0
}

// invForwardRound inverts forwardRound.
func (q *Cipher) invForwardRound(is, tk uint64, full bool) uint64 {
	is = q.subCellsInv(is)
	if full {
		is = mixColumns(is)
		is = permuteCells(is, &tauInv)
	}
	return is ^ tk
}

// invBackwardRound inverts backwardRound.
func (q *Cipher) invBackwardRound(is, tk uint64, full bool) uint64 {
	is ^= tk
	if full {
		is = permuteCells(is, &tau)
		is = mixColumns(is)
	}
	return q.subCells(is)
}
