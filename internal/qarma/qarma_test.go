package qarma

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Published QARMA-64 test vectors (Avanzi, ToSC 2017, r = 5):
//
//	P = fb623599da6e8127, T = 477d469dec0b8762,
//	K = w0||k0 = 84be85ce9804e94b ec2802d4e0a488e9.
//
// The 128-bit key 0x84be85ce9804e94bec2802d4e0a488e9 and the context
// 0x477d469dec0b8762 are exactly the values the AOS paper plugs into its
// PAC-distribution microbenchmark (§VI).
const (
	tvPlain uint64 = 0xfb623599da6e8127
	tvTweak uint64 = 0x477d469dec0b8762
	tvW0    uint64 = 0x84be85ce9804e94b
	tvK0    uint64 = 0xec2802d4e0a488e9
)

var tvCipher = map[Sbox]uint64{
	Sigma0: 0x3ee99a6c82af0c38,
	Sigma1: 0x544b0ab95bda7c3a,
	Sigma2: 0xc003b93999b33765,
}

func TestEncryptTestVectors(t *testing.T) {
	for s, want := range tvCipher {
		c := MustNew(s, Rounds, tvW0, tvK0)
		got := c.Encrypt(tvPlain, tvTweak)
		if got != want {
			t.Errorf("sigma%d: Encrypt = %016x, want %016x", s, got, want)
		}
	}
}

func TestDecryptTestVectors(t *testing.T) {
	for s, ct := range tvCipher {
		c := MustNew(s, Rounds, tvW0, tvK0)
		if got := c.Decrypt(ct, tvTweak); got != tvPlain {
			t.Errorf("sigma%d: Decrypt = %016x, want %016x", s, got, tvPlain)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for s := Sigma0; s <= Sigma2; s++ {
		c := MustNew(s, Rounds, tvW0, tvK0)
		f := func(p, tw uint64) bool {
			return c.Decrypt(c.Encrypt(p, tw), tw) == p
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("sigma%d: %v", s, err)
		}
	}
}

func TestRoundTripAcrossRoundCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for rounds := 1; rounds <= 8; rounds++ {
		c := MustNew(Sigma1, rounds, rng.Uint64(), rng.Uint64())
		for i := 0; i < 50; i++ {
			p, tw := rng.Uint64(), rng.Uint64()
			if got := c.Decrypt(c.Encrypt(p, tw), tw); got != p {
				t.Fatalf("rounds=%d: round trip failed: %016x -> %016x", rounds, p, got)
			}
		}
	}
}

func TestTweakSensitivity(t *testing.T) {
	c := MustNew(Sigma1, Rounds, tvW0, tvK0)
	base := c.Encrypt(tvPlain, tvTweak)
	for bit := 0; bit < 64; bit++ {
		if got := c.Encrypt(tvPlain, tvTweak^(1<<uint(bit))); got == base {
			t.Errorf("flipping tweak bit %d did not change the ciphertext", bit)
		}
	}
}

func TestKeySensitivity(t *testing.T) {
	base := MustNew(Sigma1, Rounds, tvW0, tvK0).Encrypt(tvPlain, tvTweak)
	for bit := 0; bit < 64; bit++ {
		cw := MustNew(Sigma1, Rounds, tvW0^(1<<uint(bit)), tvK0)
		ck := MustNew(Sigma1, Rounds, tvW0, tvK0^(1<<uint(bit)))
		if cw.Encrypt(tvPlain, tvTweak) == base {
			t.Errorf("flipping w0 bit %d did not change the ciphertext", bit)
		}
		if ck.Encrypt(tvPlain, tvTweak) == base {
			t.Errorf("flipping k0 bit %d did not change the ciphertext", bit)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Sbox(7), Rounds, 0, 0); err == nil {
		t.Error("New accepted an invalid sbox")
	}
	if _, err := New(Sigma1, 0, 0, 0); err == nil {
		t.Error("New accepted zero rounds")
	}
	if _, err := New(Sigma1, 9, 0, 0); err == nil {
		t.Error("New accepted too many rounds")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid parameters")
		}
	}()
	MustNew(Sbox(-1), Rounds, 0, 0)
}

func TestPermutationHelpers(t *testing.T) {
	// tau and tauInv must compose to the identity on a distinguishable state.
	x := uint64(0x0123456789abcdef)
	if got := permuteCells(permuteCells(x, &tau), &tauInv); got != x {
		t.Errorf("tauInv(tau(x)) = %016x, want %016x", got, x)
	}
	if got := permuteCells(permuteCells(x, &hPerm), &hPermInv); got != x {
		t.Errorf("hInv(h(x)) = %016x, want %016x", got, x)
	}
}

func TestMixColumnsInvolution(t *testing.T) {
	f := func(x uint64) bool { return mixColumns(mixColumns(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLFSRInverse(t *testing.T) {
	for v := uint64(0); v < 16; v++ {
		if lfsrInv(lfsr(v)) != v {
			t.Errorf("lfsrInv(lfsr(%d)) = %d", v, lfsrInv(lfsr(v)))
		}
		if lfsr(lfsrInv(v)) != v {
			t.Errorf("lfsr(lfsrInv(%d)) = %d", v, lfsr(lfsrInv(v)))
		}
	}
}

func TestTweakScheduleInverse(t *testing.T) {
	f := func(tw uint64) bool { return backwardTweak(forwardTweak(tw)) == tw }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSboxesAreBijective(t *testing.T) {
	for i, s := range sboxes {
		var seen [16]bool
		for _, v := range s {
			if v > 15 || seen[v] {
				t.Fatalf("sigma%d is not a permutation of 0..15", i)
			}
			seen[v] = true
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := MustNew(Sigma1, Rounds, tvW0, tvK0)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.Encrypt(uint64(i), tvTweak)
	}
	_ = sink
}
