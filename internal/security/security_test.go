package security

import (
	"math"
	"testing"

	"aos/internal/instrument"
)

func TestMatrixShape(t *testing.T) {
	rows, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Battery()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Battery()))
	}
	for _, r := range rows {
		if len(r.Outcomes) != len(instrument.AllSchemes()) {
			t.Errorf("%s: %d outcomes, want %d", r.Attack, len(r.Outcomes), len(instrument.AllSchemes()))
		}
	}
}

// outcomes collects the matrix indexed by attack name.
func outcomes(t *testing.T) map[string]map[instrument.Scheme]Outcome {
	t.Helper()
	rows, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]map[instrument.Scheme]Outcome{}
	for _, r := range rows {
		m[r.Attack] = r.Outcomes
	}
	return m
}

func TestAOSDetectsEverythingApplicable(t *testing.T) {
	// §VII: AOS provides complete spatial and temporal heap safety. Under
	// PA+AOS, every scenario in the battery must be caught.
	m := outcomes(t)
	for attack, out := range m {
		if got := out[instrument.PAAOS]; got == Undetected {
			t.Errorf("PA+AOS missed %q", attack)
		}
	}
	// Plain AOS catches everything except the return-address scenario
	// (pointer integrity is the PA extension) and AHC forging is caught
	// only by autm.
	for attack, out := range m {
		switch attack {
		case "return-address corruption (ROP)":
			if out[instrument.AOS] != NotApplicable {
				t.Errorf("AOS on ROP = %v, want n/a", out[instrument.AOS])
			}
		case "AHC forging (strip AHC, keep address)":
			if out[instrument.AOS] != Undetected {
				t.Errorf("AOS without autm on AHC forging = %v; the paper's §VII-C defense needs autm", out[instrument.AOS])
			}
		default:
			if out[instrument.AOS] != Detected {
				t.Errorf("AOS missed %q", attack)
			}
		}
	}
}

func TestBaselineDetectsNothing(t *testing.T) {
	m := outcomes(t)
	for attack, out := range m {
		got := out[instrument.Baseline]
		if got == Detected {
			t.Errorf("baseline 'detected' %q; it has no mechanism", attack)
		}
	}
}

func TestWatchdogCoverage(t *testing.T) {
	// Watchdog catches spatial and temporal violations through identifiers
	// and bounds, but not the crafted-free data-oriented attack (its
	// check micro-ops guard dereferences, not free()).
	m := outcomes(t)
	mustDetect := []string{
		"heap OOB read (adjacent)",
		"heap OOB write (adjacent)",
		"non-adjacent OOB (jumps redzones)",
		"use-after-free read",
		"dangling pointer into reused memory",
	}
	for _, attack := range mustDetect {
		if m[attack][instrument.Watchdog] != Detected {
			t.Errorf("Watchdog missed %q", attack)
		}
	}
	if m["House of Spirit (crafted free)"][instrument.Watchdog] == Detected {
		t.Log("note: Watchdog detected House of Spirit (stricter than modeled expectation)")
	}
}

func TestPACatchesROPOnly(t *testing.T) {
	m := outcomes(t)
	if m["return-address corruption (ROP)"][instrument.PA] != Detected {
		t.Error("PA missed return-address corruption")
	}
	if m["heap OOB read (adjacent)"][instrument.PA] == Detected {
		t.Error("PA 'detected' an OOB read; it provides integrity, not bounds (§II-B)")
	}
}

func TestNonAdjacentVsBlacklisting(t *testing.T) {
	// The paper's core argument against trip-wire schemes: non-adjacent
	// accesses jump over redzones. Whitelisting (AOS) must catch them.
	m := outcomes(t)
	if m["non-adjacent OOB (jumps redzones)"][instrument.AOS] != Detected {
		t.Error("AOS missed a non-adjacent OOB")
	}
}

func TestMTECoverage(t *testing.T) {
	// MTE's lock-and-key tagging catches every granule-crossing spatial
	// violation and every temporal one in the battery: freed granules are
	// retagged to 0, so stale pointers and second frees both mismatch.
	m := outcomes(t)
	mustDetect := []string{
		"heap OOB read (adjacent)",
		"heap OOB write (adjacent)",
		"non-adjacent OOB (jumps redzones)",
		"use-after-free read",
		"dangling pointer into reused memory",
		"double free (tcache-key bypass)",
		"heap metadata corruption via overflow",
	}
	for _, attack := range mustDetect {
		if m[attack][instrument.MTE] != Detected {
			t.Errorf("MTE missed %q", attack)
		}
	}
	// The crafted chunk lives in untagged (tag-0) memory and the forged
	// pointer carries tag 0: the tags agree, so the free sails through.
	if m["House of Spirit (crafted free)"][instrument.MTE] != Undetected {
		t.Errorf("MTE on House of Spirit = %v, want undetected",
			m["House of Spirit (crafted free)"][instrument.MTE])
	}
	// No pointer signing, no return-address signing.
	for _, attack := range []string{
		"AHC forging (strip AHC, keep address)",
		"return-address corruption (ROP)",
	} {
		if m[attack][instrument.MTE] != NotApplicable {
			t.Errorf("MTE on %q = %v, want n/a", attack, m[attack][instrument.MTE])
		}
	}
}

func TestHardenedAllocCoverage(t *testing.T) {
	// The software-hardened allocator guards its own entry points, not
	// dereferences: the quarantine catches the double free, ownership
	// validation rejects the crafted chunk, and everything that never
	// calls back into the allocator stays invisible.
	m := outcomes(t)
	for _, attack := range []string{
		"double free (tcache-key bypass)",
		"House of Spirit (crafted free)",
	} {
		if m[attack][instrument.HardenedAlloc] != Detected {
			t.Errorf("HardenedAlloc missed %q", attack)
		}
	}
	for _, attack := range []string{
		"heap OOB read (adjacent)",
		"non-adjacent OOB (jumps redzones)",
		"use-after-free read",
		"dangling pointer into reused memory",
	} {
		if m[attack][instrument.HardenedAlloc] != Undetected {
			t.Errorf("HardenedAlloc on %q = %v, want undetected (no dereference checks)",
				attack, m[attack][instrument.HardenedAlloc])
		}
	}
	for _, attack := range []string{
		"AHC forging (strip AHC, keep address)",
		"return-address corruption (ROP)",
	} {
		if m[attack][instrument.HardenedAlloc] != NotApplicable {
			t.Errorf("HardenedAlloc on %q = %v, want n/a", attack, m[attack][instrument.HardenedAlloc])
		}
	}
}

func TestMTEBypassProbability(t *testing.T) {
	// 4-bit tags, one value reserved for untagged memory: a random
	// far-away granule matches the pointer's tag 1 time in 15.
	if got := MTEBypassProbability(instrument.TagBits); math.Abs(got-1.0/15) > 1e-12 {
		t.Errorf("MTEBypassProbability(4) = %v, want 1/15", got)
	}
}

func TestBruteForceArithmetic(t *testing.T) {
	// §VII-E: "with a 16-bit PAC ... an attacker would require 45425
	// attempts to achieve a 50% likelihood".
	if got := AttemptsForConfidence(16, 0.5); got != 45425 {
		t.Errorf("AttemptsForConfidence(16, 0.5) = %d, want 45425", got)
	}
	if p := GuessProbability(16); p != 1.0/65536 {
		t.Errorf("GuessProbability = %v", p)
	}
	if p := CollisionProbability(16); p != 1.0/65536 {
		t.Errorf("CollisionProbability = %v", p)
	}
}

func TestExpectedRowOccupancy(t *testing.T) {
	// §VI assumption 2: typical live-chunk counts keep rows shallow. Even
	// omnetpp's ~2M live chunks average ~30 per row (within a few resizes'
	// capacity); hmmer's 1450 average 0.02.
	if got := ExpectedRowOccupancy(16, 1_993_737); math.Abs(got-30.4) > 0.1 {
		t.Errorf("omnetpp occupancy = %v", got)
	}
	if got := ExpectedRowOccupancy(16, 1450); got > 0.05 {
		t.Errorf("hmmer occupancy = %v", got)
	}
}
