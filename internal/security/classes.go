package security

import (
	"fmt"
	"strings"

	"aos/internal/instrument"
)

// Class is a heap-attack class in the PACSan-style violation taxonomy the
// adversarial harness (internal/attack) generates programs for and the
// detection-rate matrix is graded against. Unlike the Battery scenarios —
// one hand-written exploit each — a Class names a whole family of
// programs; Expected states how a scheme must behave on EVERY member.
type Class int

// Attack classes. The order is the matrix row order.
const (
	// LinearOverflow writes a contiguous walk past the end of a live
	// allocation (at least two 8-byte words, so the walk always crosses a
	// 16-byte tag-granule boundary).
	LinearOverflow Class = iota
	// OffByOne writes exactly one word at offset == requested size — the
	// smallest possible spatial violation, inside the allocator's own
	// rounding slack when size % 16 != 0.
	OffByOne
	// UAFRead loads through a dangling pointer after free, optionally
	// after filler allocations and a same-size reuse of the chunk.
	UAFRead
	// UAFWrite is UAFRead with a store.
	UAFWrite
	// DoubleFree frees a pointer twice, scribbling the tcache key in
	// between (the glibc §VII-D bypass) and optionally flushing the
	// hardened allocator's quarantine with a free storm first.
	DoubleFree
	// InvalidFree frees a misaligned or interior derived pointer.
	InvalidFree
	// FakeFree is the House-of-Spirit shape: free a crafted fake chunk
	// the allocator never handed out (Fig 1).
	FakeFree
	// MetadataCorruption overwrites the next chunk's inline size header
	// through an out-of-bounds store at usable(p)+8 (§VII-D).
	MetadataCorruption

	numClasses
)

// Classes returns every attack class in matrix row order.
func Classes() []Class {
	out := make([]Class, 0, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// String renders the class name used in matrix rows, JSON documents and
// the aossim -attack flag.
func (c Class) String() string {
	switch c {
	case LinearOverflow:
		return "linear-overflow"
	case OffByOne:
		return "off-by-one"
	case UAFRead:
		return "uaf-read"
	case UAFWrite:
		return "uaf-write"
	case DoubleFree:
		return "double-free"
	case InvalidFree:
		return "invalid-free"
	case FakeFree:
		return "fake-free"
	case MetadataCorruption:
		return "metadata-corruption"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Valid reports whether c is a registered class.
func (c Class) Valid() bool { return c >= 0 && c < numClasses }

// ParseClass resolves a class name (case-insensitive) to its value.
func ParseClass(name string) (Class, error) {
	for c := Class(0); c < numClasses; c++ {
		if strings.EqualFold(name, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("security: unknown attack class %q (valid: %s)",
		name, strings.Join(ClassNames(), ", "))
}

// ClassNames returns every class name in matrix row order.
func ClassNames() []string {
	out := make([]string, 0, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c.String())
	}
	return out
}

// Detection is the model's promise for one (scheme, class) cell: what a
// scheme must do on every well-formed program of the class.
type Detection int

// Detection promises.
const (
	// Never: the scheme has no mechanism for the class; every program
	// escapes silently. A detection here is a model violation.
	Never Detection = iota
	// Probabilistic: the scheme detects some programs of the class and a
	// documented mechanism (MTE tag collision, AOS PAC aliasing under
	// exact reuse, quarantine exhaustion, canary-miss windows) lets
	// others through. Both outcomes are legal.
	Probabilistic
	// Deterministic: the scheme must detect every program of the class; a
	// miss is a model violation.
	Deterministic
)

// String renders the promise for the matrix legend.
func (d Detection) String() string {
	switch d {
	case Deterministic:
		return "deterministic"
	case Probabilistic:
		return "probabilistic"
	default:
		return "never"
	}
}

// Expected is the documented detection model: the promise scheme s makes
// for attack class c. The reasoning per probabilistic cell:
//
//   - MTE spatial: an overflow staying inside the allocation's last,
//     rounding-padded 16-byte granule is invisible (OffByOne with
//     size%16 != 0); a contiguous walk of >= 2 words always crosses into
//     a granule that is untagged or foreign, so LinearOverflow is
//     deterministic.
//   - MTE temporal: freed granules are retagged 0, so a dangling access
//     faults — unless the chunk was reused and the 15-value allocation
//     tag cycle collided (1/15 for unrelated allocations; see
//     MTEBypassProbability).
//   - AOS temporal: pacma signs with (va, sp, size); a same-size reuse of
//     the same chunk produces a byte-identical signed pointer and
//     re-inserts equal bounds, so the stale pointer aliases the new
//     owner's entry and both a dangling access and a second free pass
//     the table checks. Without exact reuse, detection is certain.
//   - HardenedAlloc spatial: the after-payload canary is validated only
//     at free() of the clobbered chunk — a program that never frees the
//     victim escapes (the canary-miss window).
//   - HardenedAlloc temporal: the quarantine FIFO catches a double free
//     until a storm of >= QuarantineDepth frees flushes the chunk out
//     and a reuse makes the pointer "live" again.
//   - Watchdog frees: freeWatchdog only invalidates the lock — it checks
//     no identifier at free time, so DoubleFree and FakeFree pass
//     straight through to the (bypassed) glibc heuristics.
//   - InvalidFree: glibc's own alignment/size plausibility checks reject
//     misaligned and interior pointers under every scheme, so even
//     Baseline is deterministic (the mechanism differs: AOS faults at
//     bndclr, MTE/Watchdog/Baseline in the allocator).
func Expected(s instrument.Scheme, c Class) Detection {
	aos := s.SignsDataPointers()
	wd := s.HasWatchdogChecks()
	mte := s.UsesMemoryTagging()
	hard := s.HasHardenedAllocator()
	switch c {
	case LinearOverflow:
		switch {
		case wd || aos || mte:
			return Deterministic
		case hard:
			return Probabilistic // canary checked only at victim free
		}
		return Never
	case OffByOne:
		switch {
		case wd || aos:
			return Deterministic // bounds carry the exact requested size
		case mte:
			return Probabilistic // size%16 != 0 stays in the padded granule
		case hard:
			return Probabilistic // canary-miss window
		}
		return Never
	case UAFRead, UAFWrite:
		switch {
		case wd:
			return Deterministic // zeroed or re-assigned lock
		case aos:
			return Probabilistic // PAC aliasing under exact same-size reuse
		case mte:
			return Probabilistic // tag 0 unless reused; 1/15 cycle collision
		}
		return Never // hardened: poisons, but a read/write faults nothing
	case DoubleFree:
		switch {
		case aos:
			return Probabilistic // reuse re-inserts the aliased bounds
		case mte:
			return Probabilistic // reuse + tag-cycle collision
		case hard:
			return Probabilistic // quarantine exhaustion + reuse
		}
		return Never // glibc tcache key scribbled; Watchdog checks nothing at free
	case InvalidFree:
		return Deterministic
	case FakeFree:
		switch {
		case aos:
			return Deterministic // bndclr finds no bounds for the crafted pointer
		case hard:
			return Deterministic // ownership validation
		}
		return Never // glibc/MTE (tag 0 == tag 0) accept the crafted chunk
	case MetadataCorruption:
		switch {
		case wd || aos:
			return Deterministic // the header is past the object's bound
		case mte:
			return Deterministic // headers live in untagged granules
		}
		return Never // hardened: the store skips the canary word
	default:
		return Never
	}
}
