// Package security implements the paper's security analysis (§VII) as an
// executable battery: each attack scenario from the paper — spatial and
// temporal heap violations (Fig 12), the House-of-Spirit data-oriented
// attack (Fig 1), heap metadata corruption, AHC forging (§VII-C), and
// inter-object overflows — is mounted against a live machine under every
// protection scheme, producing the detection matrix the paper argues in
// prose. It also provides the PAC-entropy arithmetic behind the §VII-E
// brute-force feasibility claim.
package security

import (
	"fmt"
	"math"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/pa"
)

// Outcome describes what happened when an attack ran under a scheme.
type Outcome int

// Attack outcomes.
const (
	// Undetected means the attack's illegal operation completed silently.
	Undetected Outcome = iota
	// Detected means the scheme raised a violation before damage was done.
	Detected
	// NotApplicable means the scenario cannot be expressed under the
	// scheme (e.g. AHC forging without pointer signing).
	NotApplicable
)

// String renders the outcome for the matrix.
func (o Outcome) String() string {
	switch o {
	case Detected:
		return "DETECTED"
	case NotApplicable:
		return "n/a"
	default:
		return "undetected"
	}
}

// Attack is one mounted scenario.
type Attack struct {
	// Name identifies the scenario.
	Name string
	// Paper cites where the paper discusses it.
	Paper string
	// Run mounts the attack on a fresh machine and reports the outcome.
	Run func(m *core.Machine) (Outcome, error)
}

// Battery returns every scenario of the analysis.
func Battery() []Attack {
	return []Attack{
		{
			Name:  "heap OOB read (adjacent)",
			Paper: "Fig 12 line 6",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(80)
				if err != nil {
					return Undetected, err
				}
				if err := m.Load(p, 88, core.AccessOpts{}); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "heap OOB write (adjacent)",
			Paper: "Fig 12 line 7",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(80)
				if err != nil {
					return Undetected, err
				}
				if err := m.Store(p, 88, core.AccessOpts{}); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "non-adjacent OOB (jumps redzones)",
			Paper: "§I: >60% of spatial violations since 2014",
			Run: func(m *core.Machine) (Outcome, error) {
				a, err := m.Malloc(64)
				if err != nil {
					return Undetected, err
				}
				b, err := m.Malloc(64)
				if err != nil {
					return Undetected, err
				}
				// Reach b (and beyond) from a with a large offset, skipping
				// any surrounding redzone a blacklisting scheme would place.
				off := b.VA() - a.VA() + 4096
				if err := m.Load(a, off, core.AccessOpts{}); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "use-after-free read",
			Paper: "Fig 12 line 14",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(64)
				if err != nil {
					return Undetected, err
				}
				if err := m.Free(p); err != nil {
					return Undetected, err
				}
				if err := m.Load(p, 0, core.AccessOpts{}); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "dangling pointer into reused memory",
			Paper: "§III: temporal safety",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(1 << 13)
				if err != nil {
					return Undetected, err
				}
				if err := m.Free(p); err != nil {
					return Undetected, err
				}
				// New owner takes (part of) the memory.
				if _, err := m.Malloc(1 << 12); err != nil {
					return Undetected, err
				}
				// The stale pointer reaches beyond the new owner's object.
				if err := m.Store(p, 1<<12+64, core.AccessOpts{}); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "double free (tcache-key bypass)",
			Paper: "Fig 12 lines 16-19, §VII-D",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(64)
				if err != nil {
					return Undetected, err
				}
				if err := m.Free(p); err != nil {
					return Undetected, err
				}
				// Classic glibc bypass: the attacker scribbles over the
				// tcache key in the freed chunk, defeating the allocator's
				// own double-free heuristic. Only an external mechanism
				// (AOS's bndclr, Watchdog's identifiers) still catches it.
				m.Mem.WriteU64(p.VA()+8, 0)
				if err := m.Free(p); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "House of Spirit (crafted free)",
			Paper: "Fig 1, §VII-A",
			Run: func(m *core.Machine) (Outcome, error) {
				// Craft a fake fast chunk in attacker memory.
				const fake = uint64(0x1000_0000)
				const size = 0x40
				m.Mem.WriteU64(fake+8, size)
				m.Mem.WriteU64(fake+size+8, size)
				crafted := core.Ptr{Raw: fake + 16}
				if err := m.Free(crafted); err != nil {
					return Detected, nil
				}
				victim, err := m.Malloc(0x30)
				if err != nil {
					return Undetected, err
				}
				if victim.VA() == crafted.VA() {
					return Undetected, nil // attacker got their memory back
				}
				return Detected, nil
			},
		},
		{
			Name:  "heap metadata corruption via overflow",
			Paper: "§VII-D: heap metadata protection",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(64)
				if err != nil {
					return Undetected, err
				}
				if _, err := m.Malloc(64); err != nil {
					return Undetected, err
				}
				// Overwrite the next chunk's size header (at the end of p's
				// usable area + header offset).
				if err := m.Store(p, m.Heap.UsableSize(p.VA())+8, core.AccessOpts{}); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "AHC forging (strip AHC, keep address)",
			Paper: "§VII-C",
			Run: func(m *core.Machine) (Outcome, error) {
				p, err := m.Malloc(64)
				if err != nil {
					return Undetected, err
				}
				if !m.Scheme.SignsDataPointers() {
					return NotApplicable, nil
				}
				forged := core.Ptr{Raw: p.Raw &^ (uint64(3) << pa.AHCShift)}
				if !m.Scheme.UsesAutm() {
					// Without autm, a zero-AHC pointer simply skips bounds
					// checking: the forge succeeds.
					if err := m.Load(forged, 4096, core.AccessOpts{}); err != nil {
						return Detected, nil
					}
					return Undetected, nil
				}
				if err := m.AutM(forged); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
		{
			Name:  "return-address corruption (ROP)",
			Paper: "§VII-B, Fig 3",
			Run: func(m *core.Machine) (Outcome, error) {
				if !m.Scheme.HasReturnAddressSigning() {
					return NotApplicable, nil
				}
				// Sign a return address, corrupt it, authenticate.
				ret := uint64(0x40_1000)
				sp := uint64(0x3FFF_FFFE_0000)
				signed := m.PAUnit.SignCode(pa.KeyIA, ret, sp)
				corrupted := signed ^ 0x40 // attacker redirects control flow
				if _, err := m.PAUnit.AuthCode(pa.KeyIA, corrupted, sp); err != nil {
					return Detected, nil
				}
				return Undetected, nil
			},
		},
	}
}

// MatrixRow is one attack's outcome across schemes.
type MatrixRow struct {
	Attack   string
	Paper    string
	Outcomes map[instrument.Scheme]Outcome
}

// RunMatrix mounts every attack under every registered scheme (the
// paper's five plus the MTE and hardened-allocator backends), each on a
// fresh machine.
func RunMatrix() ([]MatrixRow, error) {
	var rows []MatrixRow
	for _, a := range Battery() {
		row := MatrixRow{Attack: a.Name, Paper: a.Paper, Outcomes: map[instrument.Scheme]Outcome{}}
		for _, s := range instrument.AllSchemes() {
			m, err := core.New(core.Config{Scheme: s})
			if err != nil {
				return nil, err
			}
			out, err := a.Run(m)
			if err != nil {
				return nil, fmt.Errorf("%s under %v: %w", a.Name, s, err)
			}
			row.Outcomes[s] = out
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- §VII-E: PAC entropy and brute-force feasibility ---

// GuessProbability is the chance a single forged PAC guess is correct.
func GuessProbability(pacBits int) float64 {
	return 1 / float64(uint64(1)<<uint(pacBits))
}

// AttemptsForConfidence returns how many guesses an attacker needs for the
// given success probability. For 16-bit PACs and p = 0.5 this reproduces
// the paper's 45425-attempt figure (§VII-E).
func AttemptsForConfidence(pacBits int, p float64) int {
	q := 1 - GuessProbability(pacBits)
	return int(math.Log(1-p) / math.Log(q))
}

// CollisionProbability returns the probability that two specific live
// chunks share a PAC (the false-positive precondition of §VII-E).
func CollisionProbability(pacBits int) float64 { return GuessProbability(pacBits) }

// MTEBypassProbability is the chance a random far-away granule carries
// the same tag as the attacking pointer under memory tagging with
// tagBits of entropy, so a spatial or temporal violation lands
// undetected. One tag value is reserved for untagged/freed memory, so
// an allocation tag collides with 1 of 2^tagBits-1 live tags. For MTE's
// 4-bit tags this is 1/15 — the probabilistic gap the deterministic AOS
// PAC check does not share (§VIII related work).
func MTEBypassProbability(tagBits int) float64 {
	return 1 / float64(uint64(1)<<uint(tagBits)-1)
}

// ExpectedRowOccupancy returns the mean number of live chunks per HBT row
// for a process with n live allocations (the §VI argument that rows stay
// shallow).
func ExpectedRowOccupancy(pacBits int, liveChunks uint64) float64 {
	return float64(liveChunks) / float64(uint64(1)<<uint(pacBits))
}
