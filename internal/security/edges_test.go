package security

import (
	"errors"
	"testing"

	"aos/internal/core"
	"aos/internal/heap"
	"aos/internal/instrument"
)

// These tests pin the *mechanisms* behind the Probabilistic cells of the
// Expected model: for each scheme whose coverage has a known hole, one
// concrete machine run demonstrates the bypass and a near-identical run
// demonstrates the detection, so the model's P verdicts are anchored to
// reproducible machine behaviour rather than prose.

func newMachine(t *testing.T, s instrument.Scheme) *core.Machine {
	t.Helper()
	m, err := core.New(core.Config{Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMTETagCycleUAF demonstrates MTE's temporal 1-in-15: the tag cycle
// returns to the victim's tag after exactly 14 intervening allocations,
// so a use-after-free against the 15th reuse of an address goes silent,
// while the same attack against the very next reuse faults.
func TestMTETagCycleUAF(t *testing.T) {
	if Expected(instrument.MTE, UAFRead) != Probabilistic {
		t.Fatal("model no longer calls MTE/UAF probabilistic; update this test")
	}

	uaf := func(fillers int) error {
		m := newMachine(t, instrument.MTE)
		a, err := m.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(a); err != nil {
			t.Fatal(err)
		}
		// Fillers of a different size leave a's tcache bin alone but each
		// consumes one allocation tag from the deterministic 1..15 cycle.
		for i := 0; i < fillers; i++ {
			if _, err := m.Malloc(80); err != nil {
				t.Fatal(err)
			}
		}
		reuse, err := m.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if reuse.VA() != a.VA() {
			t.Fatalf("reuse at %#x, want the freed chunk %#x (tcache LIFO)", reuse.VA(), a.VA())
		}
		return m.Load(a, 0, core.AccessOpts{})
	}

	// 0 fillers: the reuse carries the next tag in the cycle — mismatch.
	if err := uaf(0); err == nil {
		t.Error("stale load against the immediate reuse went undetected")
	}
	// 14 fillers: the cycle wraps and the reuse carries the stale
	// pointer's own tag — the violation completes silently.
	if err := uaf(14); err != nil {
		t.Errorf("stale load against the 15th reuse detected (%v); the tag cycle should have collided", err)
	}
}

// TestMTESameTagDistantChunks demonstrates MTE's spatial 1-in-15
// (MTEBypassProbability): two live chunks 15 allocations apart share a
// tag, so an out-of-bounds access jumping from one to the other passes
// the tag compare.
func TestMTESameTagDistantChunks(t *testing.T) {
	m := newMachine(t, instrument.MTE)
	a, err := m.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	var last core.Ptr
	for i := 0; i < 14; i++ {
		if last, err = m.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	b, err := m.Malloc(64) // 15th after a: same tag by the cycle
	if err != nil {
		t.Fatal(err)
	}

	// Reaching a differently-tagged live chunk faults...
	if err := m.Load(a, last.VA()-a.VA(), core.AccessOpts{}); err == nil {
		t.Error("OOB into a differently-tagged chunk went undetected")
	}
	// ...but reaching the tag-colliding one does not.
	if err := m.Load(a, b.VA()-a.VA(), core.AccessOpts{}); err != nil {
		t.Errorf("OOB into the tag-colliding chunk detected (%v); tags should agree 1 time in 15", err)
	}
}

// TestMTEOffByOneGranuleRounding pins the spatial hole behind MTE's
// off-by-one P cell: tagging rounds the allocation up to 16-byte
// granules, so a one-past-the-end word store stays inside the tagged
// region exactly when size % 16 == 8, and faults when the request fills
// its granules exactly.
func TestMTEOffByOneGranuleRounding(t *testing.T) {
	if Expected(instrument.MTE, OffByOne) != Probabilistic {
		t.Fatal("model no longer calls MTE/off-by-one probabilistic; update this test")
	}

	offByOne := func(size uint64) error {
		m := newMachine(t, instrument.MTE)
		a, err := m.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Malloc(size); err != nil { // a live neighbour to corrupt
			t.Fatal(err)
		}
		return m.Store(a, size, core.AccessOpts{})
	}

	// 40 % 16 == 8: granule rounding tags 48 bytes, the overflow word
	// lands in the slack — silent.
	if err := offByOne(40); err != nil {
		t.Errorf("off-by-one on a 40-byte chunk detected (%v); the padded granule should absorb it", err)
	}
	// 48 % 16 == 0: the chunk ends on a granule boundary, the overflow
	// word lands in the neighbour's untagged header granule — caught.
	if err := offByOne(48); err == nil {
		t.Error("off-by-one on a 48-byte chunk went undetected")
	}
}

// TestHardenedQuarantineExhaustion demonstrates the hardened allocator's
// temporal hole: the quarantine FIFO holds 32 chunks, so a double free
// is a hard error while the victim is parked, degrades to an
// invalid-free error once evicted, and goes fully silent when the
// attacker waits for eviction *and* reuse — the classic flush-the-
// quarantine free storm.
func TestHardenedQuarantineExhaustion(t *testing.T) {
	if Expected(instrument.HardenedAlloc, DoubleFree) != Probabilistic {
		t.Fatal("model no longer calls HardenedAlloc/double-free probabilistic; update this test")
	}
	depth := heap.DefaultHardening().QuarantineDepth

	setup := func(storm int) (*core.Machine, core.Ptr) {
		m := newMachine(t, instrument.HardenedAlloc)
		a, err := m.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(a); err != nil {
			t.Fatal(err)
		}
		// Each storm free pushes the victim one slot toward eviction;
		// a different size keeps the victim's bin untouched.
		for i := 0; i < storm; i++ {
			f, err := m.Malloc(80)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Free(f); err != nil {
				t.Fatal(err)
			}
		}
		return m, a
	}

	// Victim still quarantined: the scan catches the second free.
	m, a := setup(5)
	if err := m.Free(a); !errors.Is(err, heap.ErrDoubleFree) {
		t.Errorf("double free of a quarantined chunk = %v, want ErrDoubleFree", err)
	}

	// Victim evicted but its memory not yet reused: ownership validation
	// still rejects the free (detected, as a different error).
	m, a = setup(depth)
	if err := m.Free(a); !errors.Is(err, heap.ErrInvalidFree) {
		t.Errorf("double free of an evicted chunk = %v, want ErrInvalidFree", err)
	}

	// Victim evicted and reused: the second free is indistinguishable
	// from a legitimate free of the new owner — the bypass.
	m, a = setup(depth)
	reuse, err := m.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if reuse.VA() != a.VA() {
		t.Fatalf("reuse at %#x, want the evicted chunk %#x", reuse.VA(), a.VA())
	}
	if err := m.Free(a); err != nil {
		t.Errorf("double free after eviction and reuse detected (%v); the allocator cannot tell it from the new owner's free", err)
	}
}

// TestMisalignedFreeDetectedEverywhere pins the one deterministic column
// of the attack matrix: a free of an interior (misaligned) pointer is
// rejected by every scheme — each through its own mechanism (AOS finds
// no bounds to clear, MTE reaches the allocator's alignment check, the
// hardened allocator rejects unowned pointers, everything else falls
// through to the allocator's own validation).
func TestMisalignedFreeDetectedEverywhere(t *testing.T) {
	for _, s := range instrument.AllSchemes() {
		if Expected(s, InvalidFree) != Deterministic {
			t.Errorf("model demoted %v/invalid-free from deterministic", s)
		}
		m := newMachine(t, s)
		p, err := m.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(m.PointerArith(p, 8)); err == nil {
			t.Errorf("%v: free(p+8) succeeded; interior frees must be rejected", s)
		}
	}
}
