package attack

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aos/internal/instrument"
	"aos/internal/security"
	"aos/internal/trace"
	"aos/internal/tracecheck"
)

// TestGenerateValid: every (class, seed) draw is structurally well-formed
// and a pure function of its inputs.
func TestGenerateValid(t *testing.T) {
	for _, class := range security.Classes() {
		for seed := uint64(0); seed < 200; seed++ {
			p, err := Generate(class, mixSeed(1, int(class), int(seed)))
			if err != nil {
				t.Fatalf("%v seed %d: %v", class, seed, err)
			}
			q, err := Generate(class, p.Seed)
			if err != nil {
				t.Fatalf("%v regenerate: %v", class, err)
			}
			if p.Listing() != q.Listing() {
				t.Fatalf("%v seed %d: generation is not a pure function of the seed", class, seed)
			}
		}
	}
}

// TestDetectionMatrixModel is the harness's core soundness property: over
// a broad sample, no run under any scheme ever contradicts the documented
// model (a MISSED deterministic detection or a PHANTOM detection where
// the model promises none), and no benign step ever errors.
func TestDetectionMatrixModel(t *testing.T) {
	for _, class := range security.Classes() {
		for i := 0; i < 60; i++ {
			p, err := Generate(class, mixSeed(1, int(class), i))
			if err != nil {
				t.Fatalf("%v program %d: %v", class, i, err)
			}
			results, err := RunAll(p)
			if err != nil {
				t.Fatalf("%v program %d: harness failure: %v\n%s", class, i, err, p.Listing())
			}
			for _, r := range results {
				if r.Verdict.Violation() {
					t.Errorf("%v program %d under %v: %v (expected %v, err=%v)\n%s",
						class, i, r.Scheme, r.Verdict, r.Expected, r.Err, p.Listing())
				}
			}
		}
	}
}

// TestProbabilisticCellsSampleBothOutcomes: every cell the model calls
// probabilistic actually exercises both sides of its bypass window within
// the sampled seed range — otherwise "probabilistic" would be an untested
// claim and the matrix a constant.
func TestProbabilisticCellsSampleBothOutcomes(t *testing.T) {
	type cell struct {
		s instrument.Scheme
		c security.Class
	}
	detected := map[cell]int{}
	bypassed := map[cell]int{}
	for _, class := range security.Classes() {
		for i := 0; i < 120; i++ {
			p, err := Generate(class, mixSeed(1, int(class), i))
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range instrument.AllSchemes() {
				if security.Expected(s, class) != security.Probabilistic {
					continue
				}
				r, err := Run(p, s)
				if err != nil {
					t.Fatal(err)
				}
				switch r.Verdict {
				case VerdictDetected:
					detected[cell{s, class}]++
				case VerdictBypassed:
					bypassed[cell{s, class}]++
				}
			}
		}
	}
	for _, class := range security.Classes() {
		for _, s := range instrument.AllSchemes() {
			if security.Expected(s, class) != security.Probabilistic {
				continue
			}
			k := cell{s, class}
			if detected[k] == 0 || bypassed[k] == 0 {
				t.Errorf("probabilistic cell (%v, %v): detected=%d bypassed=%d — one side never sampled",
					s, class, detected[k], bypassed[k])
			}
		}
	}
}

// TestRunDeterminism: the same program graded twice gives the identical
// result (the machine has no hidden nondeterminism the harness can see).
func TestRunDeterminism(t *testing.T) {
	for _, class := range security.Classes() {
		p, err := Generate(class, mixSeed(7, int(class), 3))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range instrument.AllSchemes() {
			a, err := Run(p, s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(p, s)
			if err != nil {
				t.Fatal(err)
			}
			if a.Verdict != b.Verdict || a.DetectedAt != b.DetectedAt {
				t.Errorf("(%v, %v): run not deterministic: %v@%d vs %v@%d",
					s, class, a.Verdict, a.DetectedAt, b.Verdict, b.DetectedAt)
			}
		}
	}
}

// TestGoldenListings pins the seed-1 program listings byte-for-byte: the
// generator's output is part of the reproducibility contract. Regenerate
// with AOS_UPDATE_GOLDEN=1 go test ./internal/attack -run Golden.
func TestGoldenListings(t *testing.T) {
	var b strings.Builder
	for _, class := range security.Classes() {
		for i := 0; i < 3; i++ {
			p, err := Generate(class, mixSeed(1, int(class), i))
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(p.Listing())
			b.WriteString("\n")
		}
	}
	golden := filepath.Join("testdata", "listings_seed1.txt")
	if os.Getenv("AOS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with AOS_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("seed-1 listings drifted from golden %s", golden)
	}
}

// findOutcome scans programs of a class under a scheme for a verdict.
func findOutcome(t *testing.T, class security.Class, s instrument.Scheme, want Verdict) *Program {
	t.Helper()
	for i := 0; i < 300; i++ {
		p, err := Generate(class, mixSeed(1, int(class), i))
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(p, s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict == want {
			return p
		}
	}
	t.Fatalf("no %v outcome for (%v, %v) in 300 programs", want, s, class)
	return nil
}

// TestMinimize: an escaped program minimizes to a smaller program that
// still validates and still escapes, and minimization never deletes the
// attack step.
func TestMinimize(t *testing.T) {
	p := findOutcome(t, security.UAFWrite, instrument.Baseline, VerdictEscaped)
	escapes := func(q *Program) bool {
		r, err := Run(q, instrument.Baseline)
		return err == nil && r.Verdict == VerdictEscaped
	}
	min := Minimize(p, escapes)
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized program invalid: %v\n%s", err, min.Listing())
	}
	if !escapes(min) {
		t.Fatalf("minimized program no longer escapes:\n%s", min.Listing())
	}
	if len(min.Steps) > len(p.Steps) {
		t.Fatalf("minimization grew the program: %d -> %d", len(p.Steps), len(min.Steps))
	}
	// A UAF needs at least alloc + free + stale access.
	if len(min.Steps) != 3 {
		t.Errorf("UAF under Baseline should minimize to 3 steps, got %d:\n%s",
			len(min.Steps), min.Listing())
	}
}

// TestEscapeTraceReplays: an escape's trace is a valid, protocol-clean
// instruction stream — it decodes, replays to the same count, and passes
// the scheme's tracecheck contract (aossim -replay runs it by default).
func TestEscapeTraceReplays(t *testing.T) {
	cases := []struct {
		s instrument.Scheme
		c security.Class
		v Verdict
	}{
		{instrument.Baseline, security.UAFWrite, VerdictEscaped},
		{instrument.HardenedAlloc, security.LinearOverflow, VerdictBypassed},
		{instrument.MTE, security.OffByOne, VerdictBypassed},
		{instrument.AOS, security.DoubleFree, VerdictBypassed},
		{instrument.PAAOS, security.UAFRead, VerdictBypassed},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v_%v", tc.s, tc.c), func(t *testing.T) {
			p := findOutcome(t, tc.c, tc.s, tc.v)
			var buf bytes.Buffer
			res, err := WriteTrace(p, tc.s, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != tc.v {
				t.Fatalf("traced run verdict %v, want %v", res.Verdict, tc.v)
			}
			r, err := trace.NewReader(&buf)
			if err != nil {
				t.Fatal(err)
			}
			ck := tracecheck.New(tc.s)
			n := trace.Replay(r, ck)
			if r.Err() != nil {
				t.Fatalf("trace truncated: %v", r.Err())
			}
			if n == 0 {
				t.Fatal("empty trace")
			}
			if vs := ck.Finish(); len(vs) > 0 {
				t.Fatalf("escape trace violates the %v contract: %v", tc.s, vs[0])
			}
		})
	}
}

// FuzzAttackPrograms: arbitrary (class, seed) pairs must generate valid
// programs whose runs never crash the simulator, never err on benign
// steps, and never contradict a deterministic model promise — in
// particular AOS can never miss a linear overflow. Escapes must minimize
// to a program that still validates.
func FuzzAttackPrograms(f *testing.F) {
	f.Add(uint8(0), uint64(1))
	f.Add(uint8(2), uint64(42))
	f.Add(uint8(4), uint64(7))
	f.Add(uint8(7), uint64(123456789))
	f.Fuzz(func(t *testing.T, classByte uint8, seed uint64) {
		class := security.Class(int(classByte) % len(security.Classes()))
		p, err := Generate(class, seed)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid program: %v", err)
		}
		results, err := RunAll(p)
		if err != nil {
			t.Fatalf("harness failure: %v\n%s", err, p.Listing())
		}
		for _, r := range results {
			if r.Verdict.Violation() {
				t.Fatalf("model violation under %v: %v (expected %v)\n%s",
					r.Scheme, r.Verdict, r.Expected, p.Listing())
			}
			if r.Scheme == instrument.AOS && class == security.LinearOverflow &&
				r.Verdict != VerdictDetected {
				t.Fatalf("AOS missed a linear overflow\n%s", p.Listing())
			}
			if r.Verdict == VerdictEscaped || r.Verdict == VerdictBypassed {
				s := r.Scheme
				min := Minimize(p, func(q *Program) bool {
					rr, err := Run(q, s)
					return err == nil && rr.Verdict == r.Verdict
				})
				if err := min.Validate(); err != nil {
					t.Fatalf("minimized escape invalid under %v: %v", s, err)
				}
			}
		}
	})
}
