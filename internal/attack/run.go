package attack

import (
	"fmt"
	"io"

	"aos/internal/core"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/security"
	"aos/internal/trace"
)

// Verdict grades one (program, scheme) run against the detection model.
type Verdict int

// Verdicts. Detected/Bypassed/Escaped are the statistics the matrix
// counts; Missed and Phantom are model violations — the run contradicted
// a deterministic promise, which fails the harness, never a cell.
const (
	// VerdictDetected: the scheme raised a violation at the attack (or a
	// deferred check step).
	VerdictDetected Verdict = iota
	// VerdictBypassed: undetected, inside a documented probabilistic
	// bypass window.
	VerdictBypassed
	// VerdictEscaped: undetected, and the model says the scheme has no
	// mechanism for this class.
	VerdictEscaped
	// VerdictMissed: undetected although the model promises deterministic
	// detection. A model violation.
	VerdictMissed
	// VerdictPhantom: detected although the model promises the class
	// always escapes. Also a model violation.
	VerdictPhantom
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictDetected:
		return "DETECTED"
	case VerdictBypassed:
		return "bypassed"
	case VerdictEscaped:
		return "ESCAPED"
	case VerdictMissed:
		return "MISSED"
	case VerdictPhantom:
		return "PHANTOM"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Violation reports whether the verdict contradicts the model.
func (v Verdict) Violation() bool { return v == VerdictMissed || v == VerdictPhantom }

// Result is one graded run.
type Result struct {
	Scheme   instrument.Scheme
	Expected security.Detection
	Verdict  Verdict
	// DetectedAt is the index of the step that raised the violation
	// (-1 when undetected).
	DetectedAt int
	// Err is the violation the scheme raised (nil when undetected).
	Err error
}

// Run renders the program through scheme s's real instrumentation into a
// fresh core.Machine and grades the outcome. An error return is a HARNESS
// failure (a benign step errored — generated programs never do), not a
// detection: detections live in the Result.
func Run(p *Program, s instrument.Scheme) (Result, error) {
	return runSink(p, s, nil)
}

// WriteTrace re-runs the program under s with a trace.Writer attached, so
// an escape can be replayed (and protocol-checked) by `aossim -replay`.
// The graded result is returned alongside.
func WriteTrace(p *Program, s instrument.Scheme, w io.Writer) (Result, error) {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return Result{}, err
	}
	res, err := runSink(p, s, tw)
	if err != nil {
		return res, err
	}
	return res, tw.Close()
}

func runSink(p *Program, s instrument.Scheme, sink isa.Sink) (Result, error) {
	res := Result{Scheme: s, Expected: security.Expected(s, p.Class), DetectedAt: -1}
	m, err := core.New(core.Config{Scheme: s})
	if err != nil {
		return res, err
	}
	if sink != nil {
		m.SetSink(sink)
	}

	// ptrs holds the pointer each slot's allocation returned — including
	// stale copies after free, which is what temporal attacks dereference.
	var ptrs []core.Ptr
	for i, st := range p.Steps {
		var stepErr error
		switch st.Kind {
		case KAlloc:
			var q core.Ptr
			q, stepErr = m.Malloc(st.Size)
			if stepErr == nil {
				ptrs = append(ptrs, q)
			}
		case KFree:
			stepErr = m.Free(ptrs[st.Slot])
		case KLoad:
			_, stepErr = m.LoadU64(ptrs[st.Slot], st.Off)
		case KStore:
			stepErr = m.StoreU64(ptrs[st.Slot], st.Off, st.Val)
		case KOverflow:
			for w := 0; w < st.Count && stepErr == nil; w++ {
				stepErr = m.StoreU64(ptrs[st.Slot], st.Off+8*uint64(w), st.Val)
			}
		case KHeaderStore:
			// The next chunk's size word sits at usable+8: usable bytes of
			// payload, then the 16-byte boundary header's second word. The
			// offset is resolved against the live allocator because the
			// hardened allocator's canary slack widens the chunk.
			off := m.Heap.UsableSize(ptrs[st.Slot].VA()) + 8
			stepErr = m.StoreU64(ptrs[st.Slot], off, st.Val)
		case KFreeOff:
			stepErr = m.Free(m.PointerArith(ptrs[st.Slot], int64(st.Off)))
		case KScribble:
			// Raw attacker primitive: invisible to every scheme.
			m.Mem.WriteU64(ptrs[st.Slot].VA()+st.Off, st.Val)
		case KCraftFake:
			// Fig 1 lines 10-12: a plausible fake chunk — its own size word
			// and the next chunk's, so even fastbin's next-size check passes.
			m.Mem.WriteU64(st.Addr+8, st.Size)
			m.Mem.WriteU64(st.Addr+st.Size+8, st.Size)
		case KFakeFree:
			stepErr = m.Free(core.Ptr{Raw: st.Addr + 16})
		default:
			return res, fmt.Errorf("attack: unknown step kind %v", st.Kind)
		}
		if stepErr != nil {
			if !st.Attack && !st.Check {
				return res, fmt.Errorf("attack: benign step %d (%s) failed under %v: %w",
					i, st.describe(), s, stepErr)
			}
			res.DetectedAt = i
			res.Err = stepErr
			break
		}
	}
	m.Flush()

	detected := res.Err != nil
	switch {
	case detected && res.Expected == security.Never:
		res.Verdict = VerdictPhantom
	case detected:
		res.Verdict = VerdictDetected
	case res.Expected == security.Deterministic:
		res.Verdict = VerdictMissed
	case res.Expected == security.Probabilistic:
		res.Verdict = VerdictBypassed
	default:
		res.Verdict = VerdictEscaped
	}
	return res, nil
}

// RunAll grades the program under every registered scheme, in registry
// order.
func RunAll(p *Program) ([]Result, error) {
	schemes := instrument.AllSchemes()
	out := make([]Result, 0, len(schemes))
	for _, s := range schemes {
		r, err := Run(p, s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
