package attack

import (
	"fmt"

	"aos/internal/security"
)

// Allocation sizes the generator draws from: the tcache range, multiples
// of 8 so accesses stay word-aligned, mixing size%16 == 0 (the allocation
// fills its last MTE granule) and size%16 == 8 (the granule has rounding
// padding an off-by-one can hide in).
var allocSizes = []uint64{16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120}

// largeSizes is the subset big enough for interior-free deltas.
var largeSizes = []uint64{48, 64, 80, 96, 112}

const attackPattern = 0x4141414141414141

// Generate draws one well-formed attack program of the class from the
// seed. The program is a pure function of (class, seed): same inputs,
// byte-identical steps, any process, any worker count.
func Generate(class security.Class, seed uint64) (*Program, error) {
	r := newRNG(seed)
	p := &Program{Class: class, Seed: seed}
	switch class {
	case security.LinearOverflow:
		genOverflow(p, r, false)
	case security.OffByOne:
		genOverflow(p, r, true)
	case security.UAFRead:
		genUAF(p, r, false)
	case security.UAFWrite:
		genUAF(p, r, true)
	case security.DoubleFree:
		genDoubleFree(p, r)
	case security.InvalidFree:
		genInvalidFree(p, r)
	case security.FakeFree:
		genFakeFree(p, r)
	case security.MetadataCorruption:
		genMetadata(p, r)
	default:
		return nil, fmt.Errorf("attack: cannot generate class %v", class)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("attack: generated invalid program: %w", err)
	}
	return p, nil
}

// MixSeed derives the per-program seed for the index-th program of a
// class under a harness seed — exported so every surface (CLI, matrix,
// fuzz corpus) addresses the same program set.
func MixSeed(seed uint64, class security.Class, index int) uint64 {
	return mixSeed(seed, int(class), index)
}

// Programs draws n programs of the class. Each index mixes its own
// sub-seed so the set is independent of generation order.
func Programs(class security.Class, seed uint64, n int) ([]*Program, error) {
	out := make([]*Program, 0, n)
	for i := 0; i < n; i++ {
		p, err := Generate(class, mixSeed(seed, int(class), i))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// alloc appends an allocation and returns its slot.
func alloc(p *Program, size uint64) int {
	slot := 0
	for _, st := range p.Steps {
		if st.Kind == KAlloc {
			slot++
		}
	}
	p.Steps = append(p.Steps, Step{Kind: KAlloc, Slot: slot, Size: size})
	return slot
}

// warmup adds 0..2 live allocations so attack chunks do not always sit at
// the heap base (and, under MTE, so the tag cycle starts at varied points).
func warmup(p *Program, r *rng) {
	for i := r.intn(3); i > 0; i-- {
		alloc(p, r.pick(allocSizes))
	}
}

// benignStores adds 0..2 in-bounds stores to a live slot.
func benignStores(p *Program, r *rng, slot int, size uint64) {
	for i := r.intn(3); i > 0; i-- {
		off := uint64(8 * r.intn(int(size/8)))
		p.Steps = append(p.Steps, Step{Kind: KStore, Slot: slot, Off: off, Val: r.next()})
	}
}

// benignLoads adds 0..2 in-bounds loads (used where the payload must stay
// zero, e.g. so an interior free reads a deterministically-implausible
// fake size field).
func benignLoads(p *Program, r *rng, slot int, size uint64) {
	for i := r.intn(3); i > 0; i-- {
		off := uint64(8 * r.intn(int(size/8)))
		p.Steps = append(p.Steps, Step{Kind: KLoad, Slot: slot, Off: off})
	}
}

// genOverflow builds LinearOverflow (a >= 2-word contiguous walk past the
// end) or OffByOne (a single word at exactly the requested size). The
// victim neighbor B is allocated so the write lands on real foreign state,
// and is deliberately never freed: glibc's neighbor-header reads at free
// time must not hand Baseline an accidental detection. The optional
// checked free of A is the hardened allocator's only chance to validate
// the clobbered canary — present in half the programs, which is exactly
// the canary-miss window the model calls probabilistic.
func genOverflow(p *Program, r *rng, offByOne bool) {
	warmup(p, r)
	size := r.pick(allocSizes)
	a := alloc(p, size)
	alloc(p, r.pick(allocSizes)) // the neighbor B: stays live forever
	benignStores(p, r, a, size)
	if offByOne {
		p.Steps = append(p.Steps, Step{
			Kind: KStore, Slot: a, Off: size, Val: attackPattern, Attack: true,
		})
	} else {
		p.Steps = append(p.Steps, Step{
			Kind: KOverflow, Slot: a, Off: size, Count: 2 + r.intn(7),
			Val: attackPattern, Attack: true,
		})
	}
	if r.chance(1, 2) {
		p.Steps = append(p.Steps, Step{Kind: KFree, Slot: a, Check: true})
	}
}

// genUAF builds a use-after-free read or write: free the victim, allocate
// 0..16 live fillers of a different size (consuming MTE tags without
// touching the victim's tcache bin), optionally reuse the victim's chunk
// with a same-size allocation (the AOS PAC-aliasing precondition), then
// access through the stale pointer. The attack is the last step, so a
// stale store that scribbles tcache metadata can never corrupt a later
// allocation.
func genUAF(p *Program, r *rng, write bool) {
	warmup(p, r)
	size := r.pick(allocSizes)
	a := alloc(p, size)
	benignStores(p, r, a, size)
	p.Steps = append(p.Steps, Step{Kind: KFree, Slot: a})
	filler := r.pick(allocSizes)
	for filler == size {
		filler = r.pick(allocSizes)
	}
	for i := r.intn(17); i > 0; i-- {
		alloc(p, filler)
	}
	if r.chance(1, 2) {
		alloc(p, size) // reuse: tcache LIFO hands back the victim's chunk
	}
	kind := KLoad
	if write {
		kind = KStore
	}
	p.Steps = append(p.Steps, Step{
		Kind: kind, Slot: a, Off: uint64(8 * r.intn(2)), Val: attackPattern, Attack: true,
	})
}

// genDoubleFree builds the §VII-D tcache-bypass shape: free the victim,
// raw-scribble its tcache key (the primitive glibc's heuristic cannot
// survive), then free it again. A third of programs first run a free
// storm long enough to flush the hardened allocator's quarantine
// (depth 32), and half reuse the chunk — the combination that turns
// every probabilistic cell's documented bypass window into sampled
// reality: quarantine exhaustion + reuse (hardened), exact same-size
// reuse (AOS PAC aliasing), reuse + tag-cycle collision (MTE).
func genDoubleFree(p *Program, r *rng) {
	warmup(p, r)
	size := r.pick(allocSizes)
	a := alloc(p, size)
	benignStores(p, r, a, size)
	p.Steps = append(p.Steps, Step{Kind: KFree, Slot: a})
	storm := r.intn(9)
	if r.chance(1, 3) {
		storm = 32 + r.intn(13)
		if r.chance(1, 3) {
			// Pin the MTE tag-cycle boundary: 44 storm allocations plus the
			// reuse consume exactly three full 15-tag cycles, so the reused
			// chunk gets the stale pointer's tag back — the 1/15 temporal
			// collision, sampled deliberately instead of hoped for.
			storm = 44
		}
	}
	stormSize := r.pick(allocSizes)
	for stormSize == size {
		stormSize = r.pick(allocSizes)
	}
	for i := 0; i < storm; i++ {
		f := alloc(p, stormSize)
		p.Steps = append(p.Steps, Step{Kind: KFree, Slot: f})
	}
	if r.chance(1, 2) {
		alloc(p, size) // reuse the victim's chunk
	}
	p.Steps = append(p.Steps, Step{Kind: KScribble, Slot: a, Off: 8, Val: 0})
	p.Steps = append(p.Steps, Step{Kind: KFree, Slot: a, Attack: true})
}

// genInvalidFree frees a derived interior or misaligned pointer. Benign
// accesses are loads only: the payload stays zero, so an aligned interior
// free reads a zero "size field" and glibc's plausibility check rejects
// it deterministically under every scheme.
func genInvalidFree(p *Program, r *rng) {
	warmup(p, r)
	size := r.pick(largeSizes)
	a := alloc(p, size)
	benignLoads(p, r, a, size)
	delta := r.pick([]uint64{8, 24, 16, 32})
	p.Steps = append(p.Steps, Step{Kind: KFreeOff, Slot: a, Off: delta, Attack: true})
}

// genFakeFree is the House-of-Spirit shape from Fig 1: craft a fake
// chunk's size fields in global memory, free a pointer into it, then
// allocate a victim. The victim's size is chosen from a bin no fake
// chunk maps to, so the allocation itself never errors — the verdict
// rides entirely on the fake free.
func genFakeFree(p *Program, r *rng) {
	warmup(p, r)
	addr := uint64(0x1000_0000) + 0x1000*uint64(r.intn(8))
	csize := r.pick([]uint64{0x20, 0x40, 0x60})
	p.Steps = append(p.Steps, Step{Kind: KCraftFake, Addr: addr, Size: csize})
	p.Steps = append(p.Steps, Step{Kind: KFakeFree, Addr: addr, Attack: true})
	alloc(p, r.pick([]uint64{104, 120})) // victim: bins 0x70/0x80, never a fake's
}

// genMetadata overwrites the next chunk's inline size header through an
// out-of-bounds store at usable(A)+8 (the driver resolves the usable size
// against the live allocator — hardened canary slack moves it). B is
// never freed and nothing allocates afterwards, so no scheme gets an
// accidental allocator-side detection: only an access-time bounds, tag or
// watchdog check can catch it.
func genMetadata(p *Program, r *rng) {
	warmup(p, r)
	size := r.pick(allocSizes)
	a := alloc(p, size)
	alloc(p, r.pick(allocSizes)) // B: the owner of the clobbered header
	benignStores(p, r, a, size)
	p.Steps = append(p.Steps, Step{Kind: KHeaderStore, Slot: a, Val: attackPattern, Attack: true})
}
