package attack

// rng is the harness's single injected randomness source: a splitmix64
// generator (Steele et al., "Fast splittable pseudorandom number
// generators"). The generator is seedable and self-contained — no
// math/rand, no global state — so every program is a pure function of its
// seed, listings are byte-stable across processes and worker counts, and
// the detrand lint analyzer has nothing to object to.
type rng struct{ state uint64 }

// newRNG seeds a generator. Seed 0 is remapped (splitmix64 is a fine
// permutation everywhere, but a distinguished nonzero start keeps "seed 0"
// and "seed golden-ratio" from colliding by construction).
func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

// next returns the next 64-bit value.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("attack: intn with non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }

// pick returns a uniformly chosen element of xs.
func (r *rng) pick(xs []uint64) uint64 { return xs[r.intn(len(xs))] }

// mixSeed derives a per-program seed from the harness seed, the attack
// class and the program index, so each (class, index) pair draws from an
// independent stream regardless of generation order — the property that
// makes the matrix identical under any worker count.
func mixSeed(seed uint64, class int, index int) uint64 {
	x := seed ^ 0xA0B0C0D0E0F01234
	x = (x ^ uint64(class)*0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	x = (x ^ uint64(index)*0x94D049BB133111EB) * 0xD6E8FEB86659FD93
	return x ^ (x >> 32)
}
