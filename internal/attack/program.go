// Package attack is a HardsHeap-style adversarial harness for the heap
// protection schemes: a seedable, property-based generator of well-formed
// heap-attack programs (alloc/free/access sequences with exactly one
// marked violation), a driver that renders each program through the real
// per-scheme instrumentation into a core.Machine run, and a scorer that
// grades the outcome against internal/security's documented detection
// model — detected, probabilistically bypassed, or silently escaped.
//
// The representation deliberately mirrors internal/protoverify's event
// grammar, but where protoverify enumerates every abstract program to a
// small depth to prove the instrumentation CONTRACT, this package samples
// deep randomized programs to measure DETECTION: which concrete attack
// variants each scheme catches, and whether the model's deterministic
// promises hold on every sampled member (a miss is a harness failure, not
// a statistic).
package attack

import (
	"fmt"
	"strings"

	"aos/internal/security"
)

// Kind is one step's operation.
type Kind int

// Step kinds. Steps are deliberately higher-level than machine calls:
// each renders to one instrumented operation (or one attacker primitive)
// so listings read like the exploit recipes they model.
const (
	// KAlloc allocates Size bytes into Slot.
	KAlloc Kind = iota
	// KFree frees Slot's pointer (possibly stale — that is the point).
	KFree
	// KLoad is a checked load through Slot's pointer at Off.
	KLoad
	// KStore is a checked store of Val through Slot's pointer at Off.
	KStore
	// KOverflow is a checked store walk: Count words from Off upward.
	KOverflow
	// KHeaderStore is a checked store at usable(Slot)+8 — the next
	// chunk's inline size header (resolved against the live allocator,
	// since hardened canary slack changes the usable size).
	KHeaderStore
	// KFreeOff frees a pointer derived from Slot by PointerArith(Off) —
	// a misaligned or interior free.
	KFreeOff
	// KScribble is the attacker's raw write of Val at Slot's base + Off
	// (e.g. zeroing the tcache key). Raw writes model a primitive the
	// attacker already has; they are invisible to every scheme.
	KScribble
	// KCraftFake raw-writes a fake chunk's size fields at global address
	// Addr with chunk size Size (Fig 1 lines 10-12).
	KCraftFake
	// KFakeFree frees the crafted pointer Addr+16.
	KFakeFree
)

// String names the kind for listings.
func (k Kind) String() string {
	switch k {
	case KAlloc:
		return "alloc"
	case KFree:
		return "free"
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KOverflow:
		return "overflow"
	case KHeaderStore:
		return "header-store"
	case KFreeOff:
		return "free-at"
	case KScribble:
		return "scribble"
	case KCraftFake:
		return "craft-fake"
	case KFakeFree:
		return "fake-free"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Step is one event of an attack program.
type Step struct {
	Kind Kind
	// Slot indexes the program's allocations in KAlloc order.
	Slot int
	// Size is the allocation size (KAlloc) or crafted chunk size
	// (KCraftFake).
	Size uint64
	// Off is the access offset, free delta, or scribble offset.
	Off uint64
	// Val is the stored/scribbled value.
	Val uint64
	// Count is the overflow walk length in 8-byte words.
	Count int
	// Addr is the crafted chunk's global address (KCraftFake/KFakeFree).
	Addr uint64
	// Attack marks the violating step — the one the verdict hangs on.
	Attack bool
	// Check marks a post-attack step that exists to trigger deferred
	// detection (e.g. the victim free that validates a clobbered canary).
	Check bool
}

// Program is one generated attack: a well-formed step sequence with
// exactly one Attack step, tagged with the class and seed it was drawn
// from so escapes are reproducible from the listing alone.
type Program struct {
	Class security.Class
	Seed  uint64
	Steps []Step
}

// Validate checks structural well-formedness: slots allocate in order,
// benign accesses stay in bounds of live slots, and exactly one step is
// marked as the attack. The same predicate guards minimization — a
// deletion that breaks it is rejected, so every minimized program is
// still a legal program of its class.
func (p *Program) Validate() error { return validate(p.Steps) }

func validate(steps []Step) error {
	type slotState struct {
		size uint64
		live bool
	}
	var slots []slotState
	attacks := 0
	crafted := false
	for i, st := range steps {
		switch st.Kind {
		case KAlloc:
			if st.Slot != len(slots) {
				return fmt.Errorf("step %d: alloc into slot %d, expected %d", i, st.Slot, len(slots))
			}
			if st.Size == 0 || st.Size > 1024 {
				return fmt.Errorf("step %d: alloc size %d out of the harness range", i, st.Size)
			}
			slots = append(slots, slotState{size: st.Size, live: true})
		case KFree:
			if st.Slot >= len(slots) {
				return fmt.Errorf("step %d: free of unallocated slot %d", i, st.Slot)
			}
			if st.Attack != !slots[st.Slot].live {
				// A benign free needs a live slot; an attacking free must be
				// a genuine double free — otherwise minimization could
				// degenerate the attack into a legal operation.
				return fmt.Errorf("step %d: free liveness does not match its attack mark", i)
			}
			if !st.Attack {
				slots[st.Slot].live = false
			}
			// An attacking double free leaves the abstract state alone:
			// whether the concrete free succeeded is scheme-dependent.
		case KLoad, KStore:
			if st.Slot >= len(slots) {
				return fmt.Errorf("step %d: access to unallocated slot %d", i, st.Slot)
			}
			s := slots[st.Slot]
			violating := !s.live || st.Off+8 > s.size
			if st.Attack != violating {
				return fmt.Errorf("step %d: access legality does not match its attack mark", i)
			}
		case KOverflow:
			if st.Slot >= len(slots) || !st.Attack {
				return fmt.Errorf("step %d: overflow must attack an allocated slot", i)
			}
			if st.Count < 2 {
				return fmt.Errorf("step %d: overflow walk must span >= 2 words", i)
			}
		case KHeaderStore:
			if st.Slot >= len(slots) || !slots[st.Slot].live || !st.Attack {
				return fmt.Errorf("step %d: header-store must attack a live slot", i)
			}
		case KFreeOff:
			if st.Slot >= len(slots) || !slots[st.Slot].live || !st.Attack {
				return fmt.Errorf("step %d: free-at must attack a live slot", i)
			}
			if st.Off == 0 {
				return fmt.Errorf("step %d: free-at with zero delta is a plain free", i)
			}
		case KScribble:
			if st.Slot >= len(slots) {
				return fmt.Errorf("step %d: scribble on unallocated slot %d", i, st.Slot)
			}
		case KCraftFake:
			if st.Size < 32 || st.Size%16 != 0 {
				return fmt.Errorf("step %d: crafted chunk size %#x not plausible", i, st.Size)
			}
			crafted = true
		case KFakeFree:
			if !crafted || !st.Attack {
				return fmt.Errorf("step %d: fake-free needs a crafted chunk and the attack mark", i)
			}
		default:
			return fmt.Errorf("step %d: unknown kind %v", i, st.Kind)
		}
		if st.Attack {
			attacks++
		}
	}
	if attacks != 1 {
		return fmt.Errorf("program has %d attack steps, want exactly 1", attacks)
	}
	return nil
}

// Listing renders the program as a deterministic, human-readable recipe.
// The bytes are pinned by the golden test: they are part of the harness's
// reproducibility contract (same seed, same listing, any worker count).
func (p *Program) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attack %s seed=%d steps=%d\n", p.Class, p.Seed, len(p.Steps))
	for i, st := range p.Steps {
		mark := " "
		if st.Attack {
			mark = "!"
		} else if st.Check {
			mark = "?"
		}
		fmt.Fprintf(&b, "%s %2d  %s\n", mark, i, st.describe())
	}
	return b.String()
}

func (st Step) describe() string {
	switch st.Kind {
	case KAlloc:
		return fmt.Sprintf("p%d = malloc(%d)", st.Slot, st.Size)
	case KFree:
		return fmt.Sprintf("free(p%d)", st.Slot)
	case KLoad:
		return fmt.Sprintf("load p%d[%d]", st.Slot, st.Off)
	case KStore:
		return fmt.Sprintf("store p%d[%d] = %#x", st.Slot, st.Off, st.Val)
	case KOverflow:
		return fmt.Sprintf("overflow p%d[%d..%d] = %#x (%d words)",
			st.Slot, st.Off, st.Off+8*uint64(st.Count), st.Val, st.Count)
	case KHeaderStore:
		return fmt.Sprintf("store p%d[usable+8] = %#x (next chunk size header)", st.Slot, st.Val)
	case KFreeOff:
		return fmt.Sprintf("free(p%d + %d)", st.Slot, st.Off)
	case KScribble:
		return fmt.Sprintf("raw write p%d+%d = %#x", st.Slot, st.Off, st.Val)
	case KCraftFake:
		return fmt.Sprintf("craft fake chunk @ %#x size %#x", st.Addr, st.Size)
	case KFakeFree:
		return fmt.Sprintf("free(%#x) (crafted)", st.Addr+16)
	default:
		return st.Kind.String()
	}
}
