package attack

// Minimize greedily deletes steps while the program stays well-formed and
// keep still holds (keep is the "still interesting" predicate — e.g.
// "still escapes under scheme S"). Passes repeat until a fixpoint, so the
// result is 1-minimal: removing any single remaining step either breaks
// validity or the property. The attack step itself is never a deletion
// candidate; deleting an allocation renumbers later slots (and is skipped
// while any surviving step still references it).
func Minimize(p *Program, keep func(*Program) bool) *Program {
	cur := &Program{Class: p.Class, Seed: p.Seed, Steps: append([]Step(nil), p.Steps...)}
	if !keep(cur) {
		return cur // the property does not even hold on the input
	}
	for shrunk := true; shrunk; {
		shrunk = false
		for i := 0; i < len(cur.Steps); i++ {
			if cur.Steps[i].Attack {
				continue
			}
			cand := deleteStep(cur, i)
			if cand == nil || cand.Validate() != nil || !keep(cand) {
				continue
			}
			cur = cand
			shrunk = true
			i-- // the slot that replaced i is a fresh candidate
		}
	}
	return cur
}

// deleteStep builds a copy of p without step i, renumbering slots when an
// allocation is removed. Returns nil when the deletion is structurally
// impossible (a surviving step still uses the deleted slot).
func deleteStep(p *Program, i int) *Program {
	removed := p.Steps[i]
	steps := make([]Step, 0, len(p.Steps)-1)
	steps = append(steps, p.Steps[:i]...)
	steps = append(steps, p.Steps[i+1:]...)
	if removed.Kind == KAlloc {
		for j := range steps {
			if !usesSlot(steps[j].Kind) {
				continue
			}
			switch {
			case steps[j].Slot == removed.Slot:
				return nil
			case steps[j].Slot > removed.Slot:
				steps[j].Slot--
			}
		}
	}
	return &Program{Class: p.Class, Seed: p.Seed, Steps: steps}
}

// usesSlot reports whether the kind references a slot.
func usesSlot(k Kind) bool {
	switch k {
	case KAlloc, KFree, KLoad, KStore, KOverflow, KHeaderStore, KFreeOff, KScribble:
		return true
	default:
		return false
	}
}
