package aos_test

import (
	"testing"

	"aos"
)

func TestSystemBasicLifecycle(t *testing.T) {
	sys, err := aos.NewSystem(aos.Options{Scheme: aos.AOS})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Signed() {
		t.Error("AOS malloc returned an unsigned pointer")
	}
	if err := sys.StoreU64(p, 0, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := sys.LoadU64(p, 0); err != nil || v != 42 {
		t.Fatalf("LoadU64 = %d, %v", v, err)
	}
	if err := sys.Free(p); err != nil {
		t.Fatal(err)
	}
	r := sys.Finalize()
	if r.Insts == 0 || r.Cycles == 0 {
		t.Errorf("empty result: %+v", r)
	}
	if r.Heap.Allocs != 1 || r.Heap.Frees != 1 {
		t.Errorf("heap stats: %+v", r.Heap)
	}
}

func TestViolationsDetectedThroughPublicAPI(t *testing.T) {
	sys, err := aos.NewSystem(aos.Options{Scheme: aos.AOS})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sys.Malloc(64)
	if err := sys.Load(p, 128, aos.AccessOpts{}); err == nil {
		t.Error("OOB load undetected")
	}
	if err := sys.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := sys.Load(p, 0, aos.AccessOpts{}); err == nil {
		t.Error("UAF undetected")
	}
	if err := sys.Free(p); err == nil {
		t.Error("double free undetected")
	}
	excs := sys.Exceptions()
	if len(excs) != 3 {
		t.Fatalf("exceptions = %d, want 3", len(excs))
	}
	if excs[0].Kind != aos.ExcBoundsCheck || excs[2].Kind != aos.ExcBoundsClear {
		t.Errorf("exception kinds: %v, %v", excs[0].Kind, excs[2].Kind)
	}
}

func TestBaselineDetectsNothing(t *testing.T) {
	sys, err := aos.NewSystem(aos.Options{Scheme: aos.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sys.Malloc(64)
	if err := sys.Load(p, 128, aos.AccessOpts{}); err != nil {
		t.Error("baseline detected an OOB access (it has no mechanism to)")
	}
	if len(sys.Exceptions()) != 0 {
		t.Error("baseline recorded exceptions")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	spec := aos.SPECWorkloads()
	if len(spec) != 16 {
		t.Fatalf("SPEC workloads = %d, want 16", len(spec))
	}
	rw := aos.RealWorldWorkloads()
	if len(rw) != 6 {
		t.Fatalf("real-world workloads = %d, want 6", len(rw))
	}
	for _, w := range spec {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		got, ok := aos.WorkloadByName(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("WorkloadByName(%s) failed", w.Name)
		}
	}
	if _, ok := aos.WorkloadByName("nonexistent"); ok {
		t.Error("WorkloadByName accepted garbage")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	w, _ := aos.WorkloadByName("milc")
	opts := aos.Options{Scheme: aos.AOS, Instructions: 50_000, Seed: 7}
	a, err := aos.Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := aos.Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Insts != b.Insts || a.BoundsAccesses != b.BoundsAccesses {
		t.Errorf("nondeterministic run: %d/%d vs %d/%d", a.Cycles, a.Insts, b.Cycles, b.Insts)
	}
	c, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: 50_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles == a.Cycles {
		t.Log("different seeds produced identical cycles (possible but unlikely)")
	}
}

func TestRunAllSchemesAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke test")
	}
	for _, w := range aos.SPECWorkloads() {
		for _, s := range aos.Schemes() {
			r, err := aos.Run(w, aos.Options{Scheme: s, Instructions: 20_000})
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, s, err)
			}
			if r.Cycles == 0 || r.IPC() <= 0 || r.IPC() > 8 {
				t.Errorf("%s/%v: implausible result cycles=%d ipc=%.2f", w.Name, s, r.Cycles, r.IPC())
			}
			if len(r.Exceptions) != 0 {
				t.Errorf("%s/%v: benign workload raised %d violations", w.Name, s, len(r.Exceptions))
			}
			if s.SignsDataPointers() && r.CheckedOps == 0 {
				t.Errorf("%s/%v: no bounds checks", w.Name, s)
			}
		}
	}
}

func TestSchemeOrderingHoldsOnCheckedHeavyWorkload(t *testing.T) {
	w, _ := aos.WorkloadByName("hmmer")
	cycles := map[aos.Scheme]uint64{}
	for _, s := range []aos.Scheme{aos.Baseline, aos.PA, aos.AOS} {
		r, err := aos.Run(w, aos.Options{Scheme: s, Instructions: 150_000})
		if err != nil {
			t.Fatal(err)
		}
		cycles[s] = r.Cycles
	}
	if cycles[aos.AOS] <= cycles[aos.Baseline] {
		t.Errorf("AOS (%d) not slower than baseline (%d) on hmmer", cycles[aos.AOS], cycles[aos.Baseline])
	}
	if cycles[aos.PA] >= cycles[aos.AOS] {
		t.Errorf("PA (%d) not cheaper than AOS (%d) on hmmer", cycles[aos.PA], cycles[aos.AOS])
	}
}

func TestAblationOptionsChangeBehaviour(t *testing.T) {
	w, _ := aos.WorkloadByName("namd")
	full, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	noL1B, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: 100_000, DisableL1B: true})
	if err != nil {
		t.Fatal(err)
	}
	if noL1B.L1B != nil {
		t.Error("DisableL1B still reports L1B stats")
	}
	if full.L1B == nil {
		t.Error("default config missing L1B stats")
	}
	if noL1B.Cycles < full.Cycles {
		t.Errorf("removing the L1-B sped namd up: %d < %d", noL1B.Cycles, full.Cycles)
	}
	noBWB, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: 100_000, DisableBWB: true})
	if err != nil {
		t.Fatal(err)
	}
	if noBWB.BWB.Hits+noBWB.BWB.Misses != 0 {
		t.Error("DisableBWB still exercised the BWB")
	}
}

func TestPAAOSAddsOverheadOverAOS(t *testing.T) {
	w, _ := aos.WorkloadByName("omnetpp")
	a, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := aos.Run(w, aos.Options{Scheme: aos.PAAOS, Instructions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Cycles <= a.Cycles {
		t.Errorf("PA+AOS (%d) not above AOS (%d) on call-heavy omnetpp", pa.Cycles, a.Cycles)
	}
}
