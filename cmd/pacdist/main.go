// Command pacdist reproduces the paper's §VI PAC-distribution study
// (Fig 11): it calls malloc repeatedly, computes a 16-bit PAC for every
// returned pointer with QARMA-64 under the paper's key and context, and
// reports the occurrence statistics over the PAC space.
package main

import (
	"flag"
	"fmt"
	"os"

	"aos/internal/experiments"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of malloc calls")
	flag.Parse()
	r, err := experiments.Fig11(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacdist:", err)
		os.Exit(1)
	}
	fmt.Println(r)
}
