// Command aosverify statically verifies every protection scheme's
// instrumentation protocol: it exhaustively enumerates bounded heap-event
// programs, drives each through the scheme's rewriter, and checks the
// emitted instruction stream against the scheme's tracecheck contract —
// failing on the first rejected program (reported as a minimized,
// replayable counterexample) or on any expected contract rule left
// unexercised by the whole enumeration (a dead rule).
//
// Exit status: 0 all verified; 1 counterexample or dead rule; 2 harness
// or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"aos"
	"aos/internal/protoverify"
	"aos/internal/trace"
	"aos/internal/tracecheck"
)

func main() {
	all := flag.Bool("all", false, "verify every registered scheme")
	schemeName := flag.String("scheme", "", "verify one scheme (see aossim -scheme for names)")
	k := flag.Int("k", protoverify.DefaultK, "event-program depth bound")
	cover := flag.Bool("cover", false, "print the per-rule coverage table")
	coverOut := flag.String("coverout", "", "write the verification report as JSON to this file")
	ceOut := flag.String("ce", "", "write the minimized counterexample stream to this trace file (replay with aossim -replay)")
	mutantName := flag.String("mutant", "", "seed a named defect into the instrumentation stream (see -list-mutants)")
	listMutants := flag.Bool("list-mutants", false, "list the seedable defects")
	maxPrograms := flag.Uint64("max-programs", 0, "cap the enumeration (0 = exhaustive; a capped run skips dead-rule accounting)")
	flag.Parse()

	if *listMutants {
		for _, mu := range protoverify.Mutants() {
			fmt.Printf("%-14s %s\n", mu.Name, mu.Desc)
		}
		return
	}
	if *all == (*schemeName != "") {
		fmt.Fprintln(os.Stderr, "aosverify: pass exactly one of -all or -scheme")
		os.Exit(2)
	}

	opts := protoverify.Options{K: *k, MaxPrograms: *maxPrograms}
	if *mutantName != "" {
		mu, ok := protoverify.MutantByName(*mutantName)
		if !ok {
			fmt.Fprintf(os.Stderr, "aosverify: unknown mutant %q (try -list-mutants)\n", *mutantName)
			os.Exit(2)
		}
		opts.Mutate = mu.Wrap
	}

	var reports []*protoverify.Report
	if *all {
		var err error
		reports, err = protoverify.VerifyAll(opts)
		if err != nil {
			fatal(err)
		}
	} else {
		scheme, err := aos.ParseScheme(*schemeName)
		if err != nil {
			fatal(err)
		}
		rep, err := protoverify.Verify(scheme, opts)
		if err != nil {
			fatal(err)
		}
		reports = []*protoverify.Report{rep}
	}

	failed := false
	for _, rep := range reports {
		printReport(rep, *cover)
		if !rep.OK() {
			failed = true
		}
	}
	if *coverOut != "" {
		if err := writeJSON(*coverOut, reports); err != nil {
			fatal(err)
		}
	}
	if *ceOut != "" {
		if err := writeCounterexample(*ceOut, reports); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "aosverify: %v\n", err)
	os.Exit(2)
}

func printReport(rep *protoverify.Report, cover bool) {
	exercised := 0
	for _, id := range rep.Expected {
		if rep.Coverage[id] > 0 {
			exercised++
		}
	}
	status := "OK"
	switch {
	case rep.CE != nil:
		status = "COUNTEREXAMPLE"
	case len(rep.Dead) > 0:
		status = "DEAD RULES"
	case rep.Truncated:
		status = "TRUNCATED"
	}
	fmt.Printf("%-14s k=%d programs=%d events=%d insts=%d rules=%d/%d %s\n",
		rep.Scheme, rep.K, rep.Programs, rep.Events, rep.Insts,
		exercised, len(rep.Expected), status)

	if cover {
		for _, id := range tracecheck.RuleIDs() {
			mark := " "
			if expectedRule(rep, id) {
				mark = "*"
			}
			fmt.Printf("  %s %-24s %d\n", mark, id, rep.Coverage[id])
		}
	}
	for _, id := range rep.Dead {
		fmt.Printf("  dead rule %s: %s\n", id, tracecheck.Explain(id))
	}
	if rep.CE != nil {
		printCounterexample(rep)
	}
}

func expectedRule(rep *protoverify.Report, id string) bool {
	for _, e := range rep.Expected {
		if e == id {
			return true
		}
	}
	return false
}

func printCounterexample(rep *protoverify.Report) {
	ce := rep.CE
	fmt.Printf("  counterexample (minimized %d -> %d events, %d insts):\n",
		ce.OriginalLen, len(ce.Events), len(ce.Trace))
	for i, ev := range ce.Events {
		fmt.Printf("    %d. %-12s %s\n", i+1, ev, ev.Doc())
	}
	fmt.Println("  violations:")
	seen := map[string]bool{}
	for _, v := range ce.Violations {
		fmt.Printf("    %s\n", v.String())
		if exp := tracecheck.Explain(v.Rule); exp != "" && !seen[v.Rule] {
			seen[v.Rule] = true
			fmt.Printf("      %s\n", wrap(exp, 72, "      "))
		}
	}
}

// wrap reflows one paragraph to the given width with a hanging indent.
func wrap(s string, width int, indent string) string {
	words := strings.Fields(s)
	var b strings.Builder
	line := 0
	for i, w := range words {
		if i > 0 {
			if line+1+len(w) > width {
				b.WriteString("\n" + indent)
				line = 0
			} else {
				b.WriteString(" ")
				line++
			}
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}

// jsonReport is the coverage-artifact shape: scheme and events by name,
// the instruction-level trace elided (the -ce flag exports it losslessly).
type jsonReport struct {
	Scheme    string            `json:"scheme"`
	K         int               `json:"k"`
	Programs  uint64            `json:"programs"`
	Events    uint64            `json:"events"`
	Insts     uint64            `json:"insts"`
	Coverage  map[string]uint64 `json:"coverage"`
	Expected  []string          `json:"expected"`
	Dead      []string          `json:"dead,omitempty"`
	Truncated bool              `json:"truncated,omitempty"`
	OK        bool              `json:"ok"`
	CE        []string          `json:"counterexample,omitempty"`
}

func writeJSON(path string, reports []*protoverify.Report) error {
	out := make([]jsonReport, 0, len(reports))
	for _, rep := range reports {
		jr := jsonReport{
			Scheme:    rep.Scheme.String(),
			K:         rep.K,
			Programs:  rep.Programs,
			Events:    rep.Events,
			Insts:     rep.Insts,
			Coverage:  rep.Coverage,
			Expected:  rep.Expected,
			Dead:      rep.Dead,
			Truncated: rep.Truncated,
			OK:        rep.OK(),
		}
		if rep.CE != nil {
			for _, ev := range rep.CE.Events {
				jr.CE = append(jr.CE, ev.String())
			}
		}
		out = append(out, jr)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCounterexample records the first counterexample's judged stream as
// a binary trace; `aossim -replay <file> -scheme <scheme>` reproduces the
// violation in the full timing simulator.
func writeCounterexample(path string, reports []*protoverify.Report) error {
	for _, rep := range reports {
		if rep.CE == nil {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		tw, err := trace.NewWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		tw.EmitBatch(rep.CE.Trace)
		if err := tw.Close(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("counterexample stream (%d insts, scheme %s) written to %s\n",
			tw.Count(), rep.Scheme, path)
		return nil
	}
	fmt.Println("no counterexample found; nothing written to", path)
	return nil
}
