// Command memprofile reproduces Tables II and III: the memory-usage
// profiles (max active chunks, allocation and deallocation counts) of the
// SPEC 2006 and real-world workloads, measured by replaying each profile's
// full-scale allocation schedule through the simulated glibc-style
// allocator with trace-malloc accounting.
package main

import (
	"flag"
	"fmt"
	"os"

	"aos/internal/experiments"
	"aos/internal/workload"
)

func main() {
	set := flag.String("set", "spec", "profile set: spec (Table II) or realworld (Table III)")
	scale := flag.Uint64("scale", 1, "divide published allocation counts by this factor (1 = full scale)")
	flag.Parse()

	rows, err := experiments.MemProfiles(*set, *scale, experiments.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		os.Exit(1)
	}
	var profiles []*workload.Profile
	title := "Table II: SPEC 2006 memory usage profiles"
	if *set == "realworld" {
		profiles = workload.RealWorld()
		title = "Table III: real-world benchmark memory usage profiles"
	} else {
		profiles = workload.SPEC()
	}
	fmt.Println(experiments.MemProfilesString(title, rows, profiles, *scale))
}
