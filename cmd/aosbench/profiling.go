package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// startProfiling wires the standard Go profilers around a run:
// -cpuprofile and -trace start immediately, -memprofile snapshots the
// heap in the returned stop function. The profiles cover everything the
// process does, experiment runs and the benchspeed harness alike.
func startProfiling(cpuPath, memPath, tracePath string) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return stop, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return stop, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aosbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "aosbench: memprofile:", err)
			}
		})
	}
	return stop, nil
}
