package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aos"
)

// The -benchspeed harness measures the simulator itself: raw simulation
// throughput (sim-insts/s) and heap allocations per simulated instruction
// on a fixed workload/scheme pair. It writes a machine-readable document
// for CI trending and optionally gates on the allocation figure, which —
// unlike wall time — is hardware-independent and therefore safe to fail
// a build on.

// simspeedSchema versions the BENCH_simspeed.json layout.
const simspeedSchema = "aosbench/simspeed/v1"

type simspeedRun struct {
	Insts         uint64  `json:"insts"`
	WallNS        int64   `json:"wall_ns"`
	InstsPerSec   float64 `json:"insts_per_sec"`
	Allocs        uint64  `json:"allocs"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	AllocBytes    uint64  `json:"alloc_bytes"`
}

type simspeedDoc struct {
	Schema    string        `json:"schema"`
	Benchmark string        `json:"benchmark"`
	Scheme    string        `json:"scheme"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Runs      []simspeedRun `json:"runs"`
	// Best-of-runs figures: the trend lines CI cares about. Throughput
	// takes the max (least-disturbed run), allocations the min (steady
	// state with the fewest one-off growths).
	BestInstsPerSec  float64 `json:"best_insts_per_sec"`
	MinAllocsPerInst float64 `json:"min_allocs_per_inst"`
}

// benchSpeed runs the throughput harness and writes the JSON document.
// A non-negative maxAllocsPerInst turns the allocation figure into a
// gate: exceeding it returns an error (CI exits nonzero).
func benchSpeed(insts uint64, runs int, out string, maxAllocsPerInst float64) error {
	if insts == 0 {
		insts = 300_000
	}
	if runs <= 0 {
		runs = 3
	}
	const benchmark, scheme = "milc", "AOS"
	w, ok := aos.WorkloadByName(benchmark)
	if !ok {
		return fmt.Errorf("benchspeed: workload %q not found", benchmark)
	}
	doc := simspeedDoc{
		Schema:    simspeedSchema,
		Benchmark: benchmark,
		Scheme:    scheme,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	var before, after runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now() //aoslint:allow detrand — the harness's whole purpose is wall measurement; results never feed a figure
		r, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: insts, NoWarmup: true})
		wall := time.Since(start) //aoslint:allow detrand — see above
		if err != nil {
			return fmt.Errorf("benchspeed: %w", err)
		}
		runtime.ReadMemStats(&after)
		run := simspeedRun{
			Insts:      r.Insts,
			WallNS:     wall.Nanoseconds(),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		}
		if wall > 0 {
			run.InstsPerSec = float64(r.Insts) / wall.Seconds()
		}
		if r.Insts > 0 {
			run.AllocsPerInst = float64(run.Allocs) / float64(r.Insts)
		}
		doc.Runs = append(doc.Runs, run)
		if run.InstsPerSec > doc.BestInstsPerSec {
			doc.BestInstsPerSec = run.InstsPerSec
		}
		if i == 0 || run.AllocsPerInst < doc.MinAllocsPerInst {
			doc.MinAllocsPerInst = run.AllocsPerInst
		}
		fmt.Printf("benchspeed: run %d/%d: %d insts in %v (%.0f insts/s, %.4f allocs/inst)\n",
			i+1, runs, r.Insts, wall.Round(time.Millisecond), run.InstsPerSec, run.AllocsPerInst)
	}
	payload, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchspeed: best %.0f sim-insts/s, min %.4f allocs/inst -> %s\n",
		doc.BestInstsPerSec, doc.MinAllocsPerInst, out)
	if maxAllocsPerInst >= 0 && doc.MinAllocsPerInst > maxAllocsPerInst {
		return fmt.Errorf("benchspeed: allocation regression: %.4f allocs/inst exceeds budget %.4f",
			doc.MinAllocsPerInst, maxAllocsPerInst)
	}
	return nil
}
