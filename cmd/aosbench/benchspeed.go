package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aos"
	"aos/internal/experiments"
	"aos/internal/sampling"
)

// The -benchspeed harness measures the simulator itself: raw simulation
// throughput (sim-insts/s) and heap allocations per simulated instruction
// on a fixed workload/scheme pair, plus the effective throughput of the
// SMARTS sampled mode (checkpoint-resumed runs where only the measurement
// windows pay detailed-model cost). It writes a machine-readable document
// for CI trending and optionally gates on the allocation figure and the
// effective-speedup ratio, which — unlike absolute wall time — are safe
// to fail a build on (allocations are hardware-independent; the speedup
// is a ratio of two walls on the same machine).

// simspeedSchema versions the BENCH_simspeed.json layout. v2 adds the
// "sampled" block and the top-level effective_insts_per_sec /
// effective_speedup trend figures.
const simspeedSchema = "aosbench/simspeed/v2"

type simspeedRun struct {
	Insts         uint64  `json:"insts"`
	WallNS        int64   `json:"wall_ns"`
	InstsPerSec   float64 `json:"insts_per_sec"`
	Allocs        uint64  `json:"allocs"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	AllocBytes    uint64  `json:"alloc_bytes"`
}

// simspeedSampledRun is one timed sampled-mode run. The first run is cold
// (it fast-forwards to every window boundary and populates the checkpoint
// store); later runs resume from the store and pay only detailed-window
// plus tail-gap cost.
type simspeedSampledRun struct {
	Resumed              bool    `json:"resumed"`
	WallNS               int64   `json:"wall_ns"`
	EffectiveInstsPerSec float64 `json:"effective_insts_per_sec"`
}

// simspeedSampled records the sampled-mode measurement: the normalized
// U/W/F schedule and the per-run effective throughput. "Effective"
// counts the measured region's instructions (the same basis as the exact
// runs' insts_per_sec) against the sampled wall, so the ratio of the two
// is the sampled mode's real-time speedup.
type simspeedSampled struct {
	Insts         uint64               `json:"insts"`
	Warmup        uint64               `json:"warmup"`
	Windows       int                  `json:"windows"`
	Detail        uint64               `json:"detail"`
	Window        uint64               `json:"window"`
	Gap           uint64               `json:"gap"`
	DetailedInsts uint64               `json:"detailed_insts"`
	Runs          []simspeedSampledRun `json:"runs"`
	BestEffective float64              `json:"best_effective_insts_per_sec"`
}

type simspeedDoc struct {
	Schema    string        `json:"schema"`
	Benchmark string        `json:"benchmark"`
	Scheme    string        `json:"scheme"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Runs      []simspeedRun `json:"runs"`
	// Best-of-runs figures: the trend lines CI cares about. Throughput
	// takes the max (least-disturbed run), allocations the min (steady
	// state with the fewest one-off growths).
	BestInstsPerSec  float64          `json:"best_insts_per_sec"`
	MinAllocsPerInst float64          `json:"min_allocs_per_inst"`
	Sampled          *simspeedSampled `json:"sampled,omitempty"`
	// EffectiveInstsPerSec is the best checkpoint-resumed sampled run's
	// effective throughput; EffectiveSpeedup is its ratio over
	// BestInstsPerSec (the headline "10-50x" figure).
	EffectiveInstsPerSec float64 `json:"effective_insts_per_sec"`
	EffectiveSpeedup     float64 `json:"effective_speedup"`
}

// benchSampled measures the sampled mode's effective throughput. The
// sampled region is 64x the exact measurement's budget: a resumed run
// still fast-forwards one tail gap (region/windows instructions, for
// architectural exactness), so effective throughput asymptotes at
// windows x the fast-forward rate — a longer region with more windows is
// where sampling's advantage actually lives. Exact runs of that length
// would just take 64x longer at the same rate, so the per-second figures
// stay directly comparable.
func benchSampled(insts uint64, runs int) (*simspeedSampled, error) {
	spec := experiments.SimSpec{
		Benchmark: "milc", Scheme: "AOS", Instructions: 64 * insts, Seed: 1,
		Sampling: &experiments.SamplingSpec{Windows: 16},
	}
	ns, err := spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("benchspeed: %w", err)
	}
	sm := simspeedSampled{
		Insts:   ns.Instructions,
		Warmup:  ns.Instructions / 2,
		Windows: ns.Sampling.Windows,
		Detail:  ns.Sampling.Detail,
		Window:  ns.Sampling.Window,
		Gap:     ns.Sampling.Gap,
	}
	sm.DetailedInsts = uint64(sm.Windows) * (sm.Detail + sm.Window)
	store := sampling.NewStore()
	for i := 0; i <= runs; i++ { // run 0 is cold and excluded from BestEffective
		start := time.Now() //aoslint:allow detrand — wall measurement harness; results never feed a figure
		_, _, err := experiments.RunSpecFull(context.Background(), spec, experiments.RunConfig{Checkpoints: store})
		wall := time.Since(start) //aoslint:allow detrand — see above
		if err != nil {
			return nil, fmt.Errorf("benchspeed: sampled run: %w", err)
		}
		run := simspeedSampledRun{Resumed: i > 0, WallNS: wall.Nanoseconds()}
		if wall > 0 {
			run.EffectiveInstsPerSec = float64(sm.Insts) / wall.Seconds()
		}
		sm.Runs = append(sm.Runs, run)
		if run.Resumed && run.EffectiveInstsPerSec > sm.BestEffective {
			sm.BestEffective = run.EffectiveInstsPerSec
		}
		mode := "resumed"
		if !run.Resumed {
			mode = "cold"
		}
		fmt.Printf("benchspeed: sampled run %d/%d (%s): %d insts in %v (%.0f effective insts/s)\n",
			i+1, runs+1, mode, sm.Insts, wall.Round(time.Millisecond), run.EffectiveInstsPerSec)
	}
	return &sm, nil
}

// benchSpeed runs the throughput harness and writes the JSON document.
// A non-negative maxAllocsPerInst turns the allocation figure into a
// gate: exceeding it returns an error (CI exits nonzero). A non-negative
// minEffectiveSpeedup likewise gates on the sampled mode's effective
// speedup over the exact path.
func benchSpeed(insts uint64, runs int, out string, maxAllocsPerInst, minEffectiveSpeedup float64) error {
	if insts == 0 {
		insts = 300_000
	}
	if runs <= 0 {
		runs = 3
	}
	const benchmark, scheme = "milc", "AOS"
	w, ok := aos.WorkloadByName(benchmark)
	if !ok {
		return fmt.Errorf("benchspeed: workload %q not found", benchmark)
	}
	doc := simspeedDoc{
		Schema:    simspeedSchema,
		Benchmark: benchmark,
		Scheme:    scheme,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	var before, after runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now() //aoslint:allow detrand — the harness's whole purpose is wall measurement; results never feed a figure
		r, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: insts, NoWarmup: true})
		wall := time.Since(start) //aoslint:allow detrand — see above
		if err != nil {
			return fmt.Errorf("benchspeed: %w", err)
		}
		runtime.ReadMemStats(&after)
		run := simspeedRun{
			Insts:      r.Insts,
			WallNS:     wall.Nanoseconds(),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		}
		if wall > 0 {
			run.InstsPerSec = float64(r.Insts) / wall.Seconds()
		}
		if r.Insts > 0 {
			run.AllocsPerInst = float64(run.Allocs) / float64(r.Insts)
		}
		doc.Runs = append(doc.Runs, run)
		if run.InstsPerSec > doc.BestInstsPerSec {
			doc.BestInstsPerSec = run.InstsPerSec
		}
		if i == 0 || run.AllocsPerInst < doc.MinAllocsPerInst {
			doc.MinAllocsPerInst = run.AllocsPerInst
		}
		fmt.Printf("benchspeed: run %d/%d: %d insts in %v (%.0f insts/s, %.4f allocs/inst)\n",
			i+1, runs, r.Insts, wall.Round(time.Millisecond), run.InstsPerSec, run.AllocsPerInst)
	}
	sampled, err := benchSampled(insts, runs)
	if err != nil {
		return err
	}
	doc.Sampled = sampled
	doc.EffectiveInstsPerSec = sampled.BestEffective
	if doc.BestInstsPerSec > 0 {
		doc.EffectiveSpeedup = sampled.BestEffective / doc.BestInstsPerSec
	}

	payload, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchspeed: best %.0f sim-insts/s, min %.4f allocs/inst, %.0f effective insts/s (%.1fx) -> %s\n",
		doc.BestInstsPerSec, doc.MinAllocsPerInst, doc.EffectiveInstsPerSec, doc.EffectiveSpeedup, out)
	if maxAllocsPerInst >= 0 && doc.MinAllocsPerInst > maxAllocsPerInst {
		return fmt.Errorf("benchspeed: allocation regression: %.4f allocs/inst exceeds budget %.4f",
			doc.MinAllocsPerInst, maxAllocsPerInst)
	}
	if minEffectiveSpeedup >= 0 && doc.EffectiveSpeedup < minEffectiveSpeedup {
		return fmt.Errorf("benchspeed: sampling regression: effective speedup %.1fx below floor %.1fx",
			doc.EffectiveSpeedup, minEffectiveSpeedup)
	}
	return nil
}
