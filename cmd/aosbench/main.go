// Command aosbench regenerates the paper's tables and figures.
//
// Usage:
//
//	aosbench -exp all                 # everything
//	aosbench -exp fig14               # one experiment
//	aosbench -exp fig14 -insts 200000 # quicker, scaled run
//	aosbench -exp fig14 -j 8          # matrix over 8 workers
//	aosbench -exp fig14 -json         # machine-readable matrix document
//	aosbench -exp fig14 -sample       # SMARTS sampled simulation (fast, ~2% error)
//	aosbench -benchspeed              # simulator throughput + alloc/speedup gates
//	aosbench -exp all -cpuprofile cpu.pb.gz  # profile a full regeneration
//
// Matrix-style experiments fan out over a bounded worker pool (-j, default
// GOMAXPROCS); results are keyed and ordered by (benchmark, scheme), so -j 1
// and -j N output is byte-identical. Progress goes to stderr: ANSI
// single-line updates on a terminal, plain newline-delimited lines when
// stderr is piped (or with -no-ansi).
//
// Experiments: fig11 fig14 fig15 fig16 fig17 fig18 table1 table2 table3
// resize ablate security schemes all. "security" is the §VII detection
// matrix and "schemes" the normalized-overhead comparison; both cover
// every registered backend (the paper's five plus MTE and the hardened
// allocator).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"aos/internal/experiments"
	"aos/internal/instrument"
	"aos/internal/sampling"
	"aos/internal/telemetry"
	"aos/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig11, fig14..fig18, table1..table3, resize, ablate, security, schemes, attacks, all)")
	insts := flag.Uint64("insts", 0, "override per-benchmark instruction budget (0 = profile defaults)")
	seed := flag.Int64("seed", 1, "workload generator seed")
	scale := flag.Uint64("scale", 20, "allocation-count divisor for table2/table3")
	mallocs := flag.Int("mallocs", 1_000_000, "malloc count for fig11")
	workers := flag.Int("j", 0, "parallel jobs for matrix experiments (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the evaluation matrix as JSON (matrix-backed experiments only)")
	quiet := flag.Bool("q", false, "suppress progress output")
	noAnsi := flag.Bool("no-ansi", false, "plain newline-delimited progress even on a terminal")
	csv := flag.Bool("csv", false, "emit fig14/fig18 as CSV for plotting")
	sanitize := flag.Bool("sanitize", false, "tee every run through the tracecheck protocol verifier; any violation fails the experiment")
	attackPrograms := flag.Int("attack-programs", 0, "generated programs per attacks-matrix cell (0 = default)")
	timeout := flag.Duration("timeout", 0, "abort in-flight experiments after this duration (0 = no limit); canceled jobs fail with context errors")
	timelinePath := flag.String("timeline", "", "write one matrix cell's Perfetto trace_event JSON timeline to this file (matrix experiments; see -timeline-cell)")
	timelineCell := flag.String("timeline-cell", "mcf/AOS", "matrix cell to record, as benchmark/scheme (with -timeline)")
	timelineInterval := flag.Uint64("timeline-interval", telemetry.DefaultInterval, "telemetry sampling interval in commit cycles (with -timeline)")
	benchspeed := flag.Bool("benchspeed", false, "measure simulator throughput and allocations instead of running an experiment")
	benchout := flag.String("benchout", "BENCH_simspeed.json", "output file for -benchspeed results")
	benchruns := flag.Int("benchruns", 3, "measurement repetitions for -benchspeed")
	maxAllocs := flag.Float64("max-allocs-per-inst", -1, "with -benchspeed: exit 1 when the best run allocates more than this per simulated instruction (<0 = no gate)")
	minEffSpeedup := flag.Float64("min-effective-speedup", -1, "with -benchspeed: exit 1 when the sampled mode's effective speedup over the exact path is below this (<0 = no gate)")
	sample := flag.Bool("sample", false, "SMARTS sampled simulation: only measurement windows run the detailed timing model; cycle figures become window-CPI extrapolations (architectural counts stay exact)")
	sampleWindows := flag.Int("sample-windows", 0, "with -sample: measurement windows per run (0 = default, "+fmt.Sprint(sampling.DefaultWindows)+")")
	sampleGap := flag.Uint64("sample-gap", 0, "with -sample: fast-forward gap between windows in instructions (0 = derived so windows tile the region)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	stopProf, err := startProfiling(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *benchspeed {
		if err := benchSpeed(*insts, *benchruns, *benchout, *maxAllocs, *minEffSpeedup); err != nil {
			stopProf()
			fatal(err)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	o := experiments.Options{Instructions: *insts, Seed: *seed, Workers: *workers, Sanitize: *sanitize, Context: ctx}
	if *sample {
		// One store for the whole invocation: with -exp all, later
		// matrix-backed experiments resume from checkpoints the first
		// matrix populated. (Sanitized runs ignore the store and sample
		// cold — a restore would desynchronize the teeing checker.)
		o.Sampling = &sampling.Schedule{Windows: *sampleWindows, Gap: *sampleGap}
		o.Checkpoints = sampling.NewStore()
	}
	ansi := !*noAnsi && stderrIsTerminal()
	if !*quiet {
		o.Progress = func(ev experiments.Event) {
			line := ev.Label
			if ev.Total > 0 {
				line = fmt.Sprintf("[%d/%d] %s (%s)", ev.Completed, ev.Total, ev.Label, ev.Wall.Round(time.Millisecond))
			}
			if ev.Err != nil {
				line += ": ERROR: " + ev.Err.Error()
			}
			if ansi {
				fmt.Fprintf(os.Stderr, "\r\033[K%s", line)
			} else {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	done := func() {
		if !*quiet && ansi {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
	}

	needMatrix := map[string]bool{"fig14": true, "fig16": true, "fig17": true, "fig18": true, "all": true}

	// -timeline records one matrix cell's telemetry during the matrix
	// run. Sampling is passive, so every other cell's numbers — and the
	// rendered figures — are unchanged by the flag.
	var tlMu sync.Mutex
	var cellTimeline *telemetry.Timeline
	if *timelinePath != "" {
		if !needMatrix[*exp] {
			fatal(fmt.Errorf("-timeline requires a matrix-backed experiment (fig14, fig16, fig17, fig18, all)"))
		}
		bench, schemeStr, ok := strings.Cut(*timelineCell, "/")
		if !ok {
			fatal(fmt.Errorf("-timeline-cell must be benchmark/scheme, got %q", *timelineCell))
		}
		if _, ok := workload.ByName(bench); !ok {
			fatal(fmt.Errorf("-timeline-cell: unknown benchmark %q", bench))
		}
		cellScheme, err := instrument.ParseScheme(schemeStr)
		if err != nil {
			fatal(fmt.Errorf("-timeline-cell: %w", err))
		}
		o.TelemetryInterval = *timelineInterval
		o.OnTimeline = func(b string, s instrument.Scheme, tl *telemetry.Timeline) {
			if b == bench && s == cellScheme {
				tlMu.Lock()
				cellTimeline = tl
				tlMu.Unlock()
			}
		}
	}

	var matrix *experiments.Matrix
	var matrixWall time.Duration
	if needMatrix[*exp] {
		start := time.Now() //aoslint:allow detrand — wall duration is reported as metadata, never in results
		var err error
		matrix, err = experiments.RunMatrix(o)
		matrixWall = time.Since(start) //aoslint:allow detrand — metadata only (see above)
		done()
		if err != nil {
			// The matrix keeps every successful job's result, but a partial
			// matrix would render misleading figures — report and abort.
			fmt.Fprintln(os.Stderr, "aosbench: matrix jobs failed:", err)
			os.Exit(1)
		}
	}

	if *timelinePath != "" {
		tlMu.Lock()
		tl := cellTimeline
		tlMu.Unlock()
		if tl == nil {
			fatal(fmt.Errorf("-timeline: matrix produced no timeline for cell %s", *timelineCell))
		}
		if err := writeCellTimeline(*timelinePath, *timelineCell, tl); err != nil {
			fatal(err)
		}
		// The non-matrix experiments that also run under -exp all reuse o;
		// they have no timeline sink, so stop sampling there.
		o.TelemetryInterval = 0
		o.OnTimeline = nil
	}

	if *jsonOut && *exp != "attacks" {
		if matrix == nil {
			fatal(fmt.Errorf("-json requires a matrix-backed experiment (fig14, fig16, fig17, fig18, all) or -exp attacks"))
		}
		doc, err := experiments.MatrixDocument(matrix, o, matrixWall)
		if err != nil {
			fatal(err)
		}
		out, err := doc.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	runExp := func(name string) {
		switch name {
		case "fig11":
			r, err := experiments.Fig11(*mallocs)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r)
		case "fig14":
			r, err := experiments.Fig14(matrix)
			if err != nil {
				fatal(err)
			}
			if *csv {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
		case "fig15":
			r, err := experiments.Fig15(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "fig16":
			rows, err := experiments.Fig16(matrix)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.Fig16String(rows))
		case "fig17":
			rows, err := experiments.Fig17(matrix)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.Fig17String(rows))
		case "fig18":
			r, err := experiments.Fig18(matrix)
			if err != nil {
				fatal(err)
			}
			if *csv {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
		case "table1":
			fmt.Println(experiments.Table1String())
		case "table2":
			rows, err := experiments.MemProfiles("spec", *scale, o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(experiments.MemProfilesString(
				"Table II: SPEC 2006 memory usage profiles", rows, workload.SPEC(), *scale))
		case "table3":
			rows, err := experiments.MemProfiles("realworld", *scale, o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(experiments.MemProfilesString(
				"Table III: real-world benchmark memory usage profiles", rows, workload.RealWorld(), *scale))
		case "resize":
			r, err := experiments.ResizeStudy(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "ablate":
			r, err := experiments.Ablations(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "security":
			out, err := experiments.SecurityMatrix()
			if err != nil {
				fatal(err)
			}
			fmt.Println(out)
		case "schemes":
			r, err := experiments.SchemeOverhead(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "attacks":
			r, err := experiments.AttackMatrix(o, *attackPrograms, uint64(*seed))
			if err != nil {
				fatal(err)
			}
			done()
			if *jsonOut {
				out, err := r.Document().JSON()
				if err != nil {
					fatal(err)
				}
				fmt.Println(string(out))
			} else {
				fmt.Println(r)
			}
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig11", "table2", "table3",
			"fig14", "fig16", "fig17", "fig18", "fig15", "resize", "ablate", "security", "schemes"} {
			runExp(name)
			fmt.Println()
		}
		return
	}
	runExp(*exp)
}

// stderrIsTerminal reports whether stderr is attached to a character
// device, so piped and CI logs get plain newline-delimited progress
// instead of raw ANSI erase sequences.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// writeCellTimeline exports one matrix cell's telemetry as Perfetto
// trace_event JSON and re-validates the written bytes with the in-tree
// schema checker, so a malformed export fails the run instead of the UI.
func writeCellTimeline(path, cell string, tl *telemetry.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteTraceEvents(f, "aosbench "+cell); err != nil {
		f.Close()
		return fmt.Errorf("timeline: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, err := telemetry.ValidateTraceJSON(data)
	if err != nil {
		return fmt.Errorf("timeline: %s fails validation: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "aosbench: timeline %s: %d events, %d counter tracks, %d slices (validated)\n",
		path, st.Events, len(st.CounterTracks), st.Slices)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aosbench:", err)
	os.Exit(1)
}
