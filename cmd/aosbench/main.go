// Command aosbench regenerates the paper's tables and figures.
//
// Usage:
//
//	aosbench -exp all                 # everything
//	aosbench -exp fig14               # one experiment
//	aosbench -exp fig14 -insts 200000 # quicker, scaled run
//
// Experiments: fig11 fig14 fig15 fig16 fig17 fig18 table1 table2 table3
// resize ablate all.
package main

import (
	"flag"
	"fmt"
	"os"

	"aos/internal/experiments"
	"aos/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig11, fig14..fig18, table1..table3, resize, ablate, security, all)")
	insts := flag.Uint64("insts", 0, "override per-benchmark instruction budget (0 = profile defaults)")
	seed := flag.Int64("seed", 1, "workload generator seed")
	scale := flag.Uint64("scale", 20, "allocation-count divisor for table2/table3")
	mallocs := flag.Int("mallocs", 1_000_000, "malloc count for fig11")
	quiet := flag.Bool("q", false, "suppress progress output")
	csv := flag.Bool("csv", false, "emit fig14/fig18 as CSV for plotting")
	flag.Parse()

	o := experiments.Options{Instructions: *insts, Seed: *seed}
	if !*quiet {
		o.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "\r\033[K"+format, args...)
		}
	}
	done := func() {
		if !*quiet {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
	}

	needMatrix := map[string]bool{"fig14": true, "fig16": true, "fig17": true, "fig18": true, "all": true}
	var matrix *experiments.Matrix
	if needMatrix[*exp] {
		var err error
		matrix, err = experiments.RunMatrix(o)
		if err != nil {
			fatal(err)
		}
		done()
	}

	runExp := func(name string) {
		switch name {
		case "fig11":
			r, err := experiments.Fig11(*mallocs)
			if err != nil {
				fatal(err)
			}
			fmt.Println(r)
		case "fig14":
			if *csv {
				fmt.Print(experiments.Fig14(matrix).CSV())
			} else {
				fmt.Println(experiments.Fig14(matrix))
			}
		case "fig15":
			r, err := experiments.Fig15(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "fig16":
			fmt.Println(experiments.Fig16String(experiments.Fig16(matrix)))
		case "fig17":
			fmt.Println(experiments.Fig17String(experiments.Fig17(matrix)))
		case "fig18":
			if *csv {
				fmt.Print(experiments.Fig18(matrix).CSV())
			} else {
				fmt.Println(experiments.Fig18(matrix))
			}
		case "table1":
			fmt.Println(experiments.Table1String())
		case "table2":
			rows, err := experiments.MemProfiles("spec", *scale, o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(experiments.MemProfilesString(
				"Table II: SPEC 2006 memory usage profiles", rows, workload.SPEC(), *scale))
		case "table3":
			rows, err := experiments.MemProfiles("realworld", *scale, o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(experiments.MemProfilesString(
				"Table III: real-world benchmark memory usage profiles", rows, workload.RealWorld(), *scale))
		case "resize":
			r, err := experiments.ResizeStudy(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "ablate":
			r, err := experiments.Ablations(o)
			if err != nil {
				fatal(err)
			}
			done()
			fmt.Println(r)
		case "security":
			out, err := experiments.SecurityMatrix()
			if err != nil {
				fatal(err)
			}
			fmt.Println(out)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig11", "table2", "table3",
			"fig14", "fig16", "fig17", "fig18", "fig15", "resize", "ablate", "security"} {
			runExp(name)
			fmt.Println()
		}
		return
	}
	runExp(*exp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aosbench:", err)
	os.Exit(1)
}
