// Command aosload is an open-loop load generator for the aosd serving
// API: it drives a configurable request mix (single cells, figure
// compositions, attack matrices) at a target rate with cold-vs-warm
// cache ratios and optional burst schedules, and emits an
// aosload/report/v1 JSON document with an HDR-style latency breakdown
// and an SLO pass/fail verdict.
//
// Usage:
//
//	aosload -url http://127.0.0.1:8080 -mix mixed -rate 50 -duration 30s
//	aosload -mix single -warm 0.8 -rate 200 -duration 10s -slo-p99 250ms
//	aosload -burst-every 10s -burst-len 2s -burst-factor 5
//	aosload -self -duration 5s            # boot an in-process aosd first
//
// Exit status: 0 when the SLO verdict passes, 1 when it fails, 2 on
// configuration or transport-setup errors. The report always goes to
// -out (default stdout), pass or fail, so CI can archive it either way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aos/internal/loadgen"
	"aos/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "http://127.0.0.1:8080", "aosd base URL")
	mix := flag.String("mix", "single", fmt.Sprintf("request mix %v", loadgen.Mixes()))
	rate := flag.Float64("rate", 10, "open-loop target rate in requests/second")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	inflight := flag.Int("inflight", 64, "max concurrent requests (exhausted slots count as client shed)")
	warm := flag.Float64("warm", 0, "fraction [0,1] of requests repeating the base seed (cache-warm traffic)")
	insts := flag.Uint64("insts", 20000, "instruction budget per simulation cell")
	seed := flag.Int64("seed", 1, "schedule seed (mix choices, warm/cold split, cold seeds)")
	burstEvery := flag.Duration("burst-every", 0, "burst period (0 = no bursts)")
	burstLen := flag.Duration("burst-len", 0, "burst length within each period")
	burstFactor := flag.Float64("burst-factor", 0, "rate multiplier during bursts")
	sloAvail := flag.Float64("slo-availability", 0.99, "availability objective the verdict is graded against")
	sloP99 := flag.Duration("slo-p99", 0, "p99 latency objective (0 = ungated)")
	out := flag.String("out", "-", "report path (- = stdout)")
	self := flag.Bool("self", false, "boot an in-process aosd and load it (ignores -url; demos and smoke tests)")
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL:         *url,
		Mix:             *mix,
		Rate:            *rate,
		Duration:        *duration,
		MaxInFlight:     *inflight,
		WarmRatio:       *warm,
		Instructions:    *insts,
		Seed:            *seed,
		SLOAvailability: *sloAvail,
		SLOP99:          *sloP99,
	}
	if *burstEvery > 0 {
		cfg.Burst = &loadgen.BurstSpec{Every: *burstEvery, Len: *burstLen, Factor: *burstFactor}
	}

	if *self {
		svc, err := service.New(service.Config{Tracing: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aosload: self-serve:", err)
			return 2
		}
		ts := httptest.NewServer(svc.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			svc.Close(ctx)
		}()
		cfg.BaseURL = ts.URL
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aosload:", err)
		return 2
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aosload:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "aosload:", err)
		return 2
	}
	if !rep.SLO.Pass {
		fmt.Fprintf(os.Stderr, "aosload: SLO FAIL: %v\n", rep.SLO.Reasons)
		return 1
	}
	return 0
}
