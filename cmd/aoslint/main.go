// Command aoslint runs the repo's custom analyzers (internal/lint) over
// the module: exhaustive scheme/op switches, no order-dependent map
// iteration, no wall-clock/randomness outside the seeding sites,
// stats.Table arity checks, plus the dataflow pair — hotpathalloc (no
// allocation-prone constructs reachable from the timing core's commit
// roots or any //aoslint:hotpath function) and lockbalance (mutex
// Lock/Unlock and refcount-mutation discipline on every control-flow
// path).
//
// Usage:
//
//	go run ./cmd/aoslint ./...
//	go run ./cmd/aoslint ./internal/experiments ./cmd/...
//
// Findings print as path:line:col: [analyzer] message; the exit status is
// 1 when anything is found. Suppress an individual finding with an
// annotation on its line or the line above:
//
//	//aoslint:allow mapiter — keys are sorted below
package main

import (
	"flag"
	"fmt"
	"os"

	"aos/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aoslint [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}
	diags := lint.Run(pkgs, lint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aoslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aoslint:", err)
	os.Exit(1)
}
