// Command aosd serves the AOS simulator as a long-lived JSON HTTP
// service with job scheduling, content-addressed result caching and
// Prometheus metrics.
//
// Usage:
//
//	aosd -addr :8080                       # serve with defaults
//	aosd -addr :8080 -j 4 -queue 128       # 4 sim workers, 128-deep queue
//	aosd -cachedir /var/cache/aosd         # spill results to disk
//	aosd -job-timeout 2m -max-insts 5e6    # interactive-scale guard rails
//	aosd -pprof                            # mount /debug/pprof/ (opt-in)
//
// Because a simulation's result is a pure function of its spec
// (benchmark, scheme, instruction budget, seed, sanitize), aosd caches
// results under the SHA-256 of the spec's canonical JSON: resubmitting an
// identical spec returns the exact cached bytes without re-simulating.
// When the queue is full, submissions get HTTP 429 with Retry-After
// rather than unbounded buffering. SIGINT/SIGTERM drains in-flight jobs
// before exit (bounded by -drain).
//
// See EXPERIMENTS.md for curl recipes (including composing Fig 14 from
// cached cells) and DESIGN.md §9 for the architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aos/internal/service"
	"aos/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("j", 0, "simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-job queue depth (full queue -> HTTP 429)")
	cacheBytes := flag.Int64("cachebytes", 64<<20, "in-memory result-cache budget in bytes")
	cacheDir := flag.String("cachedir", "", "spill cached results to this directory (survives restarts)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-time limit (0 = none)")
	maxInsts := flag.Uint64("max-insts", 0, "reject specs above this instruction budget (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before canceling jobs")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	telemetryInterval := flag.Uint64("telemetry-interval", telemetry.DefaultInterval,
		"flight-recorder sampling cadence in commit cycles for fresh runs (0 disables; summaries ride on job documents and SSE streams)")
	logFormat := flag.String("log", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	trace := flag.Bool("trace", false,
		"enable distributed tracing: W3C traceparent propagation plus per-job span trees served as Perfetto documents from /v1/jobs/{id}/trace and /v1/traces/{id}")
	sloAvailability := flag.Float64("slo-availability", 0,
		"availability objective for the /metrics error-budget burn gauges (0 = 0.99)")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aosd:", err)
		os.Exit(1)
	}

	if err := run(*addr, service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheBytes:        *cacheBytes,
		CacheDir:          *cacheDir,
		JobTimeout:        *jobTimeout,
		MaxInstructions:   *maxInsts,
		TelemetryInterval: *telemetryInterval,
		Logger:            logger,
		Tracing:           *trace,
		SLOAvailability:   *sloAvailability,
	}, *drain, *pprof, logger); err != nil {
		logger.Error("exiting", "error", err)
		os.Exit(1)
	}
}

// buildLogger assembles the daemon's structured logger. All aosd
// diagnostics flow through it; per-job records (added by the service)
// carry the job's correlation ID.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log %q (want text or json)", format)
	}
}

func run(addr string, cfg service.Config, drain time.Duration, pprof bool, logger *slog.Logger) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// BaseContext stays Background: a signal must drain jobs gracefully,
	// not cancel them outright — svc.Close force-cancels only once the
	// drain budget expires.

	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	handler := svc.Handler()
	if pprof {
		// Profiling is opt-in: the handlers expose stack traces and heap
		// contents, so they never ride along on a default deployment. The
		// service mux owns every other path.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "url", "http://"+addr+"/debug/pprof/")
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", addr, "workers", cfg.Workers,
			"queue_depth", cfg.QueueDepth, "telemetry_interval", cfg.TelemetryInterval)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let queued and running
	// jobs finish, then force-cancel whatever remains past the budget.
	logger.Info("shutting down; draining jobs", "budget", drain)
	stop() // a second signal now kills the process immediately
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	svc.Close(shutdownCtx)
	<-errc // ListenAndServe has returned ErrServerClosed
	logger.Info("drained")
	return nil
}
