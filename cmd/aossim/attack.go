package main

import (
	"fmt"
	"os"

	"aos"
	"aos/internal/attack"
	"aos/internal/security"
)

// runAttack is the single-program adversarial mode: generate one attack
// program of the class from the seed, grade it under every registered
// scheme, and — when it evades the scheme selected with -scheme —
// minimize the evasion and optionally record its trace for -replay.
func runAttack(className string, scheme aos.Scheme, seed uint64, tracePath string) error {
	class, err := security.ParseClass(className)
	if err != nil {
		return err
	}
	p, err := attack.Generate(class, seed)
	if err != nil {
		return err
	}
	fmt.Print(p.Listing())
	fmt.Println()

	results, err := attack.RunAll(p)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-10s %-14s %s\n", "scheme", "verdict", "model", "detail")
	for _, r := range results {
		detail := "-"
		if r.Err != nil {
			detail = fmt.Sprintf("step %d: %v", r.DetectedAt, r.Err)
		}
		fmt.Printf("%-14s %-10s %-14s %s\n", r.Scheme, r.Verdict, r.Expected, detail)
	}

	var chosen attack.Result
	for _, r := range results {
		if r.Scheme == scheme {
			chosen = r
		}
	}
	if chosen.Verdict != attack.VerdictBypassed && chosen.Verdict != attack.VerdictEscaped {
		if tracePath != "" {
			fmt.Printf("\n%s detected the attack; no escape trace to write\n", scheme)
		}
		return nil
	}

	// The program evaded -scheme: shrink it to the 1-minimal evasion.
	verdict := chosen.Verdict
	min := attack.Minimize(p, func(q *attack.Program) bool {
		r, err := attack.Run(q, scheme)
		return err == nil && r.Verdict == verdict
	})
	fmt.Printf("\n%s under %s: minimized to %d steps (from %d)\n",
		verdict, scheme, len(min.Steps), len(p.Steps))
	fmt.Print(min.Listing())

	if tracePath == "" {
		return nil
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	res, err := attack.WriteTrace(min, scheme, f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if res.Verdict != verdict {
		return fmt.Errorf("traced re-run graded %v, expected %v", res.Verdict, verdict)
	}
	fmt.Printf("escape trace written to %s (replay: aossim -replay %s -scheme %s)\n",
		tracePath, tracePath, scheme)
	return nil
}
