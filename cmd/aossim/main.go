// Command aossim runs one workload under one protection scheme and prints
// a detailed timing and behaviour report — the single-run working tool the
// experiment harness is built from.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aos"
	"aos/internal/cpu"
	"aos/internal/isa"
	"aos/internal/telemetry"
	"aos/internal/trace"
	"aos/internal/tracecheck"
)

func main() {
	wl := flag.String("workload", "gcc", "benchmark name (see -list)")
	schemeName := flag.String("scheme", "AOS", "protection scheme (case-insensitive): Baseline | Watchdog | PA | AOS | PA+AOS | MTE | Hardened")
	insts := flag.Uint64("insts", 0, "program-instruction budget override")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list available workloads")
	noL1B := flag.Bool("no-l1b", false, "disable the L1 bounds cache")
	noComp := flag.Bool("no-compression", false, "disable bounds compression")
	noBWB := flag.Bool("no-bwb", false, "disable the bounds way buffer")
	noFwd := flag.Bool("no-forwarding", false, "disable bounds forwarding")
	record := flag.String("record", "", "record the dynamic instruction stream to this trace file")
	pipetrace := flag.Int("pipetrace", 0, "print pipeline timestamps for the first N instructions")
	replay := flag.String("replay", "", "replay a recorded trace through the timing core (ignores -workload)")
	attackClass := flag.String("attack", "", "generate and grade one heap-attack program of this class under every scheme (see internal/security.ClassNames; ignores -workload)")
	attackTrace := flag.String("attack-trace", "", "with -attack: when the program evades -scheme, write the minimized escape's trace here (replayable with -replay)")
	nocheck := flag.Bool("nocheck", false, "disable the always-on tracecheck protocol sanitizer")
	timeline := flag.String("timeline", "", "record cycle-sampled telemetry and write a Perfetto trace_event JSON timeline to this file")
	timelineInterval := flag.Uint64("timeline-interval", telemetry.DefaultInterval, "telemetry sampling interval in commit cycles (with -timeline)")
	validateTimeline := flag.Bool("validate-timeline", true, "validate the written timeline against the trace_event schema (with -timeline)")
	flag.Parse()

	if *list {
		var names []string
		for _, w := range aos.SPECWorkloads() {
			names = append(names, w.Name)
		}
		fmt.Println("SPEC 2006:", strings.Join(names, " "))
		names = names[:0]
		for _, w := range aos.RealWorldWorkloads() {
			names = append(names, w.Name)
		}
		fmt.Println("real-world:", strings.Join(names, " "))
		return
	}

	scheme, err := aos.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aossim: %v\n", err)
		os.Exit(1)
	}

	if *replay != "" {
		// The trace format does not record the scheme; -scheme tells the
		// checker which contract the recorded stream promised.
		replayTrace(*replay, scheme, !*nocheck)
		return
	}

	if *attackClass != "" {
		if err := runAttack(*attackClass, scheme, uint64(*seed), *attackTrace); err != nil {
			fmt.Fprintln(os.Stderr, "aossim:", err)
			os.Exit(1)
		}
		return
	}

	w, ok := aos.WorkloadByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "aossim: unknown workload %q (try -list)\n", *wl)
		os.Exit(1)
	}

	opts := aos.Options{
		Scheme:             scheme,
		Seed:               *seed,
		Instructions:       *insts,
		DisableL1B:         *noL1B,
		DisableCompression: *noComp,
		DisableBWB:         *noBWB,
		DisableForwarding:  *noFwd,
		Sanitize:           !*nocheck,
	}
	if *timeline != "" {
		opts.TelemetryInterval = *timelineInterval
	}
	var r aos.Result
	switch {
	case *pipetrace > 0:
		r, err = runPipetrace(w, opts, *pipetrace)
	case *record != "":
		r, err = runRecorded(w, opts, *record)
	default:
		r, err = aos.Run(w, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aossim:", err)
		os.Exit(1)
	}
	if *timeline != "" {
		if err := writeTimeline(*timeline, r, w.Name, scheme, *validateTimeline); err != nil {
			fmt.Fprintln(os.Stderr, "aossim:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("workload %s under %s\n", w.Name, scheme)
	fmt.Printf("  cycles           %12d\n", r.Cycles)
	fmt.Printf("  instructions     %12d\n", r.Insts)
	fmt.Printf("  IPC              %12.3f\n", r.IPC())
	fmt.Printf("  branch mispred   %12d (%.2f%%)\n", r.Branch.Mispredicts, 100*r.Branch.Rate())
	fmt.Printf("  L1-D miss rate   %12.3f\n", r.L1D.MissRate())
	if r.L1B != nil {
		fmt.Printf("  L1-B miss rate   %12.3f\n", r.L1B.MissRate())
	}
	fmt.Printf("  L2 miss rate     %12.3f\n", r.L2.MissRate())
	fmt.Printf("  DRAM accesses    %12d\n", r.DRAMAccesses)
	fmt.Printf("  traffic L1<->L2  %12d bytes\n", r.Traffic.L1ToL2)
	fmt.Printf("  traffic L2<->MEM %12d bytes\n", r.Traffic.L2ToDRAM)
	fmt.Printf("  checked ops      %12d\n", r.CheckedOps)
	fmt.Printf("  bounds accesses  %12d (%.3f per checked op)\n", r.BoundsAccesses,
		perOp(r.BoundsAccesses, r.CheckedOps))
	fmt.Printf("  BWB hit rate     %12.3f\n", r.BWB.HitRate())
	fmt.Printf("  bounds forwards  %12d\n", r.Forwards)
	fmt.Printf("  retire delay     %12d cycles\n", r.RetireDelay)
	fmt.Printf("  HBT assoc        %12d (%d resizes)\n", r.HBTAssoc, r.HBTResizes)
	fmt.Printf("  heap             allocs=%d frees=%d maxLive=%d\n", r.Heap.Allocs, r.Heap.Frees, r.Heap.MaxLive)
	fmt.Printf("  violations       %12d\n", len(r.Exceptions))
}

// writeTimeline exports the run's telemetry as a Perfetto-loadable
// trace_event JSON file, optionally re-reading it through the in-tree
// schema validator so a bad export fails here, not in the UI.
func writeTimeline(path string, r aos.Result, name string, scheme aos.Scheme, validate bool) error {
	if r.Timeline == nil {
		return fmt.Errorf("timeline: run recorded no telemetry")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	proc := fmt.Sprintf("aossim %s/%s", name, scheme)
	if err := r.Timeline.WriteTraceEvents(f, proc); err != nil {
		f.Close()
		return fmt.Errorf("timeline: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if validate {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		st, err := telemetry.ValidateTraceJSON(data)
		if err != nil {
			return fmt.Errorf("timeline: %s fails validation: %w", path, err)
		}
		fmt.Printf("timeline %s: %d events, %d counter tracks, %d slices (validated)\n",
			path, st.Events, len(st.CounterTracks), st.Slices)
		return nil
	}
	fmt.Printf("timeline written to %s\n", path)
	return nil
}

func perOp(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// runRecorded runs the workload while teeing the instruction stream to a
// trace file.
func runRecorded(w *aos.Workload, opts aos.Options, path string) (aos.Result, error) {
	f, err := os.Create(path)
	if err != nil {
		return aos.Result{}, err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return aos.Result{}, err
	}
	sys, err := aos.NewSystem(opts)
	if err != nil {
		return aos.Result{}, err
	}
	sys.TeeSink(tw)
	prof := *w
	if opts.Instructions != 0 {
		prof.Instructions = opts.Instructions
	}
	if err := prof.Run(sys.Machine(), opts.Seed); err != nil {
		return aos.Result{}, err
	}
	if err := tw.Close(); err != nil {
		return aos.Result{}, err
	}
	if err := sys.SanitizeErr(); err != nil {
		return aos.Result{}, err
	}
	fmt.Printf("recorded %d instructions to %s\n", tw.Count(), path)
	return sys.Finalize(), nil
}

// replayTrace replays a trace file through a fresh timing core, checking
// the recorded stream against the scheme's protocol unless disabled.
func replayTrace(path string, scheme aos.Scheme, check bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aossim:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aossim:", err)
		os.Exit(1)
	}
	c := cpu.New(cpu.DefaultConfig())
	sink := isa.Sink(c)
	var chk *tracecheck.Checker
	if check {
		chk = tracecheck.New(scheme)
		sink = isa.MultiSink{c, chk}
	}
	n := trace.Replay(tr, sink)
	if err := tr.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "aossim: trace corrupt:", err)
		os.Exit(1)
	}
	if chk != nil {
		chk.Finish()
		if err := chk.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "aossim: %v\n%s", err, err.(*tracecheck.Error).Report())
			os.Exit(1)
		}
	}
	r := c.Finalize()
	fmt.Printf("replayed %d instructions: cycles=%d IPC=%.3f bounds=%d\n",
		n, r.Cycles, r.IPC(), r.BoundsAccesses)
}

// runPipetrace runs the workload printing pipeline timestamps for the
// first n instructions.
func runPipetrace(w *aos.Workload, opts aos.Options, n int) (aos.Result, error) {
	sys, err := aos.NewSystem(opts)
	if err != nil {
		return aos.Result{}, err
	}
	fmt.Printf("%-28s %8s %8s %8s %8s %8s %8s\n",
		"instruction", "fetch", "dispatch", "issue", "complete", "commit", "mcu")
	count := 0
	sys.Core().SetObserver(func(in *isa.Inst, t cpu.Timestamps) {
		if count >= n {
			return
		}
		count++
		mcu := "-"
		if t.MCUDone != 0 {
			mcu = fmt.Sprint(t.MCUDone)
		}
		fmt.Printf("%-28s %8d %8d %8d %8d %8d %8s\n",
			in.String(), t.Fetch, t.Dispatch, t.Issue, t.Complete, t.Commit, mcu)
	})
	prof := *w
	if opts.Instructions != 0 {
		prof.Instructions = opts.Instructions
	}
	if err := prof.Run(sys.Machine(), opts.Seed); err != nil {
		return aos.Result{}, err
	}
	if err := sys.SanitizeErr(); err != nil {
		return aos.Result{}, err
	}
	return sys.Finalize(), nil
}
