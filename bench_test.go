package aos_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment at a reduced instruction budget and reports
// the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reprints the whole evaluation. The full-scale figures come from
// cmd/aosbench (see EXPERIMENTS.md).

import (
	"testing"

	"aos"
	"aos/internal/experiments"
	"aos/internal/instrument"
)

// benchOpts is the reduced budget used by the bench harness.
func benchOpts() experiments.Options {
	return experiments.Options{Instructions: 120_000, Seed: 1}
}

// BenchmarkFig11PACDistribution regenerates the §VI PAC-distribution
// microbenchmark (Fig 11): avg/max/min/stdev of PAC occurrences.
func BenchmarkFig11PACDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(200_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Avg, "avg-occurrences")
		b.ReportMetric(float64(r.Summary.Max), "max-occurrences")
		b.ReportMetric(r.Summary.Stdev, "stdev")
	}
}

// BenchmarkTable1HardwareOverhead regenerates Table I (CACTI-like model).
func BenchmarkTable1HardwareOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		b.ReportMetric(rows[0].AreaMM2, "mcq-area-mm2")
		b.ReportMetric(rows[2].AreaMM2, "l1b-area-mm2")
		b.ReportMetric(rows[3].AreaMM2, "l1d-area-mm2")
	}
}

// BenchmarkTable2MemoryProfiles regenerates Table II at 1/200 scale.
func BenchmarkTable2MemoryProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MemProfiles("spec", 200, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var allocs uint64
		for _, r := range rows {
			allocs += r.Allocs
		}
		b.ReportMetric(float64(allocs), "total-allocs")
	}
}

// BenchmarkTable3RealWorldProfiles regenerates Table III at 1/200 scale.
func BenchmarkTable3RealWorldProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MemProfiles("realworld", 200, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "benchmarks")
	}
}

// BenchmarkFig14ExecutionTime regenerates the headline figure: geomean
// normalized execution time per scheme across the 16 SPEC profiles.
func BenchmarkFig14ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f, err := experiments.Fig14(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[instrument.Watchdog], "watchdog-geomean")
		b.ReportMetric(f.Geomean[instrument.PA], "pa-geomean")
		b.ReportMetric(f.Geomean[instrument.AOS], "aos-geomean")
		b.ReportMetric(f.Geomean[instrument.PAAOS], "pa+aos-geomean")
	}
}

// BenchmarkFig15Optimizations regenerates the L1-B / bounds-compression
// ablation geomeans.
func BenchmarkFig15Optimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean[experiments.V15None], "no-opt-geomean")
		b.ReportMetric(r.Geomean[experiments.V15Both], "both-opts-geomean")
	}
}

// BenchmarkFig16InstructionStats regenerates the instruction-mix figure and
// reports hmmer's signed-access share (the paper's >99% callout).
func BenchmarkFig16InstructionStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.Fig16(m)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Name == "hmmer" {
				signed := row.SignedLoad + row.SignedStore
				total := signed + row.UnsignedLoad + row.UnsignedStore
				b.ReportMetric(signed/total, "hmmer-signed-share")
			}
		}
	}
}

// BenchmarkFig17BoundsAccesses regenerates the accesses-per-checked-op and
// BWB hit-rate figure.
func BenchmarkFig17BoundsAccesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.Fig17(m)
		if err != nil {
			b.Fatal(err)
		}
		var acc, hit float64
		var worst float64
		for _, r := range rows {
			acc += r.AccessesPerInst
			hit += r.BWBHitRate
			if r.AccessesPerInst > worst {
				worst = r.AccessesPerInst
			}
		}
		b.ReportMetric(acc/float64(len(rows)), "avg-accesses-per-op")
		b.ReportMetric(hit/float64(len(rows)), "avg-bwb-hitrate")
		b.ReportMetric(worst, "max-accesses-per-op")
	}
}

// BenchmarkFig18NetworkTraffic regenerates the traffic figure geomeans.
func BenchmarkFig18NetworkTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f, err := experiments.Fig18(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[instrument.Watchdog], "watchdog-traffic")
		b.ReportMetric(f.Geomean[instrument.PAAOS], "pa+aos-traffic")
	}
}

// BenchmarkResizeStudy regenerates the §IX-A.1 gradual-resizing study.
func BenchmarkResizeStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ResizeStudy(experiments.Options{Instructions: 60_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ForcedResizes), "stress-resizes")
		b.ReportMetric(r.OverheadVsPresized, "vs-presized")
	}
}

// BenchmarkAblations regenerates the beyond-the-paper design-choice sweeps.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NoBWB["gcc"], "gcc-no-bwb")
		b.ReportMetric(r.MCQ12["hmmer"], "hmmer-mcq12")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (the
// engineering metric for the harness itself).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := aos.WorkloadByName("milc")
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := aos.Run(w, aos.Options{Scheme: aos.AOS, Instructions: 100_000, NoWarmup: true})
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}
