// Package aos is a from-scratch reproduction of "Hardware-based Always-On
// Heap Memory Safety" (Kim, Lee, Kim — MICRO 2020): the AOS bounds-checking
// mechanism built on Arm pointer-authentication primitives, together with
// every substrate its evaluation depends on — a QARMA-64 cipher, a
// glibc-style heap allocator, the hashed bounds table with gradual
// resizing, the memory check unit (MCQ + BWB), an out-of-order timing
// model with the paper's Table IV platform, and the Watchdog and PA
// baselines.
//
// The package is a facade over the internal packages. Typical use:
//
//	sys, _ := aos.NewSystem(aos.Options{Scheme: aos.AOS})
//	p, _ := sys.Malloc(64)
//	err := sys.Load(p, 128, aos.AccessOpts{}) // out of bounds -> detected
//
// or run a full benchmark profile through the timing simulator:
//
//	res, _ := aos.Run(aos.SPECWorkloads()[0], aos.Options{Scheme: aos.AOS})
//	fmt.Println(res.Cycles, res.IPC())
package aos

import (
	"context"
	"fmt"

	"aos/internal/core"
	"aos/internal/cpu"
	"aos/internal/heap"
	"aos/internal/instrument"
	"aos/internal/isa"
	"aos/internal/kernel"
	"aos/internal/telemetry"
	"aos/internal/tracecheck"
	"aos/internal/workload"
)

// Scheme selects the protection mechanism (§VIII system configurations).
type Scheme = instrument.Scheme

// The evaluated schemes.
const (
	// Baseline has no security features.
	Baseline = instrument.Baseline
	// Watchdog is the hardware bounds+UAF-checking baseline.
	Watchdog = instrument.Watchdog
	// PA is PA-based code- and data-pointer integrity.
	PA = instrument.PA
	// AOS is the paper's mechanism.
	AOS = instrument.AOS
	// PAAOS is AOS integrated with PA pointer integrity.
	PAAOS = instrument.PAAOS
	// MTE is ARM-style 4-bit lock-and-key memory tagging.
	MTE = instrument.MTE
	// HardenedAlloc is the software hardened-allocator mode (quarantine,
	// canaries, poison-on-free).
	HardenedAlloc = instrument.HardenedAlloc
)

// Schemes returns the paper's five evaluated schemes in paper order.
func Schemes() []Scheme { return instrument.Schemes() }

// AllSchemes returns every registered scheme — the paper's five plus
// the comparison backends — in registry order.
func AllSchemes() []Scheme { return instrument.AllSchemes() }

// ParseScheme resolves a scheme name (canonical spelling, registered
// alias, or any case variant thereof).
func ParseScheme(name string) (Scheme, error) { return instrument.ParseScheme(name) }

// Ptr is a program pointer value (signed under AOS).
type Ptr = core.Ptr

// AccessOpts qualifies a memory access.
type AccessOpts = core.AccessOpts

// Dependency shapes for synthetic instruction streams.
const (
	// DepFree marks an operand with no interesting producer.
	DepFree = core.DepFree
	// DepChain marks a dependency on the latest ALU result.
	DepChain = core.DepChain
	// DepChase marks a dependency on the latest loaded value.
	DepChase = core.DepChase
)

// Exception is a recorded memory-safety violation.
type Exception = kernel.Exception

// Violation kinds.
const (
	// ExcBoundsCheck is an out-of-bounds or use-after-free access.
	ExcBoundsCheck = kernel.ExcBoundsCheck
	// ExcBoundsClear is a double free or invalid free.
	ExcBoundsClear = kernel.ExcBoundsClear
	// ExcPAAuth is a pointer-authentication failure.
	ExcPAAuth = kernel.ExcPAAuth
)

// Workload is a benchmark profile.
type Workload = workload.Profile

// SPECWorkloads returns the 16 SPEC CPU 2006 profiles (§VIII).
func SPECWorkloads() []*Workload { return workload.SPEC() }

// RealWorldWorkloads returns the Table III profiles.
func RealWorldWorkloads() []*Workload { return workload.RealWorld() }

// WorkloadByName finds a profile by benchmark name.
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// Options configures a System or a Run.
type Options struct {
	// Scheme is the protection configuration (default Baseline).
	Scheme Scheme
	// Seed makes synthetic workloads deterministic (default 1).
	Seed int64
	// Instructions overrides the profile's program-instruction budget
	// (0 keeps the profile default).
	Instructions uint64

	// AOS optimization ablations (§V-F, Fig 15). All optimizations are on
	// by default, matching the paper's headline configuration.
	DisableL1B         bool
	DisableCompression bool
	DisableBWB         bool
	DisableForwarding  bool

	// InitialHBTAssoc overrides the initial bounds-table associativity
	// (default 1, per Table IV).
	InitialHBTAssoc int

	// NoWarmup disables the default warmup-then-measure methodology in
	// Run (half the instruction budget warms caches, predictor and BWB
	// before statistics start — mirroring the paper's measurement of a
	// window within 3B-instruction executions).
	NoWarmup bool

	// Sanitize tees the instruction stream through the tracecheck protocol
	// verifier; Run fails with a *tracecheck.Error when the functional
	// machine emits a stream violating the scheme's instrumentation
	// contract (internal/tracecheck documents the rules).
	Sanitize bool

	// ScalarEmit disables the batched emission path in Run: instructions
	// are delivered to the timing core one Emit call at a time instead of
	// in EmitBatch chunks. Results are identical either way (the golden
	// equivalence test pins this); the scalar path exists for debugging
	// and for that test.
	ScalarEmit bool

	// TelemetryInterval, when nonzero, attaches the flight recorder: the
	// timing core samples every registered probe each TelemetryInterval
	// commit cycles into Result.Timeline (telemetry.DefaultInterval is
	// the conventional cadence). Telemetry is passive — results are
	// byte-identical with it on or off (the sampled-vs-unsampled
	// equivalence test pins this) — and costs nothing when disabled.
	TelemetryInterval uint64
}

// System couples a functional AOS machine with a timing core. Every
// operation performed on the machine streams into the timing model.
type System struct {
	machine  *core.Machine
	core     *cpu.Core
	opts     Options
	checker  *tracecheck.Checker
	extras   []isa.Sink
	timeline *telemetry.Timeline
}

// NewSystem builds a machine+core pair for the given options.
func NewSystem(opts Options) (*System, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	m, err := core.New(core.Config{
		Scheme:             opts.Scheme,
		InitialHBTAssoc:    opts.InitialHBTAssoc,
		UncompressedBounds: opts.DisableCompression,
	})
	if err != nil {
		return nil, err
	}
	cfg := cpu.DefaultConfig()
	if opts.DisableL1B {
		cfg.Caches.L1B = nil
	}
	cfg.MCU.UseBWB = !opts.DisableBWB
	cfg.MCU.Forwarding = !opts.DisableForwarding
	c := cpu.New(cfg)
	m.SetSink(c)
	s := &System{machine: m, core: c, opts: opts}
	if opts.Sanitize {
		s.checker = tracecheck.New(opts.Scheme)
		s.TeeSink(s.checker)
	}
	if opts.TelemetryInterval > 0 {
		s.EnableTelemetry(opts.TelemetryInterval)
	}
	return s, nil
}

// EnableTelemetry attaches the flight recorder at the given sampling
// interval (in commit cycles; 0 means telemetry.DefaultInterval) and
// returns the timeline it records into. The timing core and the
// functional machine register their probes in the timeline's shared
// registry. Enable before emitting instructions; calling it twice
// returns the existing timeline.
func (s *System) EnableTelemetry(interval uint64) *telemetry.Timeline {
	if s.timeline != nil {
		return s.timeline
	}
	tl := telemetry.NewTimeline(telemetry.NewRegistry(), interval)
	s.core.AttachTelemetry(tl)
	s.machine.AttachTelemetry(tl)
	s.timeline = tl
	return tl
}

// Timeline returns the recorded telemetry timeline (nil when
// telemetry was never enabled).
func (s *System) Timeline() *telemetry.Timeline { return s.timeline }

// Machine-facing operations (see internal/core for semantics).

// Malloc allocates heap memory through the instrumented allocator; under
// AOS the returned pointer is signed and its bounds stored in the HBT.
func (s *System) Malloc(size uint64) (Ptr, error) { return s.machine.Malloc(size) }

// Calloc allocates zeroed memory.
func (s *System) Calloc(n, size uint64) (Ptr, error) { return s.machine.Calloc(n, size) }

// Free releases an allocation with the scheme's instrumentation; under AOS
// a double free or invalid free is detected here (bndclr failure).
func (s *System) Free(p Ptr) error { return s.machine.Free(p) }

// Load performs a checked load through p at the given byte offset.
func (s *System) Load(p Ptr, off uint64, o AccessOpts) error { return s.machine.Load(p, off, o) }

// Store performs a checked store.
func (s *System) Store(p Ptr, off uint64, o AccessOpts) error { return s.machine.Store(p, off, o) }

// LoadU64 is Load plus the actual data read (suppressed on violations).
func (s *System) LoadU64(p Ptr, off uint64) (uint64, error) { return s.machine.LoadU64(p, off) }

// StoreU64 is Store plus the actual data write (suppressed on violations).
func (s *System) StoreU64(p Ptr, off uint64, v uint64) error { return s.machine.StoreU64(p, off, v) }

// PointerArith derives a new pointer at a byte delta; PAC and AHC ride
// along for free (the paper's key propagation property).
func (s *System) PointerArith(p Ptr, delta int64) Ptr { return s.machine.PointerArith(p, delta) }

// Compute emits n ALU operations.
func (s *System) Compute(n int, dep core.Dep) { s.machine.Compute(n, dep) }

// Branch emits a conditional branch outcome.
func (s *System) Branch(site uint32, taken bool) { s.machine.Branch(site, taken) }

// Call and Ret emit an instrumented call/return pair's halves.
func (s *System) Call() { s.machine.Call() }

// Ret emits the return half.
func (s *System) Ret() { s.machine.Ret() }

// Exceptions returns every detected memory-safety violation so far.
func (s *System) Exceptions() []Exception { return s.machine.Exceptions() }

// Machine exposes the functional machine for advanced scenarios (attack
// construction, direct heap inspection).
func (s *System) Machine() *core.Machine { return s.machine }

// Core exposes the timing model (observers, advanced inspection).
func (s *System) Core() *cpu.Core { return s.core }

// TeeSink duplicates the instruction stream to an additional sink (e.g. a
// trace recorder or protocol checker) alongside the timing core. Calling
// it again adds further sinks; earlier tees keep receiving the stream.
func (s *System) TeeSink(extra isa.Sink) {
	s.extras = append(s.extras, extra)
	s.machine.SetSink(append(isa.MultiSink{s.core}, s.extras...))
}

// Sanitizer returns the protocol checker when Options.Sanitize was set,
// else nil. SanitizeErr is the usual entry point; the checker itself
// exposes the structured violations.
func (s *System) Sanitizer() *tracecheck.Checker { return s.checker }

// SanitizeErr finishes the protocol checker and returns its verdict: nil
// without Options.Sanitize or on a clean stream, a *tracecheck.Error
// otherwise. Call after the run's final operation.
func (s *System) SanitizeErr() error {
	if s.checker == nil {
		return nil
	}
	s.checker.Finish()
	return s.checker.Err()
}

// Result summarizes a finished run.
type Result struct {
	cpu.Result
	// Counts is the dynamic instruction breakdown (Fig 16 classes).
	Counts isa.Counts
	// Heap is the allocator's trace-malloc statistics (Table II classes).
	Heap heap.Stats
	// Exceptions are the detected violations.
	Exceptions []Exception
	// HBTAssoc is the final bounds-table associativity.
	HBTAssoc int
	// HBTResizes counts OS-handled table resizes (§IX-A.1).
	HBTResizes int
	// Timeline is the recorded telemetry (nil unless
	// Options.TelemetryInterval was set or EnableTelemetry called).
	// It is operational metadata: never part of canonical experiment
	// output or cache-addressed result bytes.
	Timeline *telemetry.Timeline
}

// Finalize stops the system and returns its results. Any batched
// instructions still buffered in the machine are flushed first.
func (s *System) Finalize() Result {
	s.machine.Flush()
	return Result{
		Result:     s.core.Finalize(),
		Counts:     s.machine.Counts(),
		Heap:       s.machine.Heap.Stats(),
		Exceptions: s.machine.Exceptions(),
		HBTAssoc:   s.machine.Table().Assoc(),
		HBTResizes: len(s.machine.OS.Resizes()),
		Timeline:   s.timeline,
	}
}

// Run executes one workload profile under the given options and returns
// the timing result.
func Run(w *Workload, opts Options) (Result, error) {
	return RunContext(context.Background(), w, opts)
}

// RunContext is Run with cooperative cancellation: the workload emission
// loop polls ctx mid-run, so a deadline or client abandon aborts the
// simulation within a few thousand emitted instructions. An aborted run
// returns ctx's error (wrapped with the workload identity); its partial
// statistics are discarded.
func RunContext(ctx context.Context, w *Workload, opts Options) (Result, error) {
	sys, err := NewSystem(opts)
	if err != nil {
		return Result{}, err
	}
	if !opts.ScalarEmit {
		sys.machine.SetBatch(core.EmitBatchSize)
	}
	p := w.Clone() // so an Instructions override does not mutate a shared profile
	if opts.Instructions != 0 {
		p.Instructions = opts.Instructions
	}
	warmup := p.Instructions / 2
	onWarm := func() { sys.core.ResetStats() }
	if opts.NoWarmup {
		warmup, onWarm = 0, nil
	}
	if err := p.RunCtx(ctx, sys.machine, opts.Seed, warmup, onWarm); err != nil {
		return Result{}, fmt.Errorf("aos: workload %s under %v: %w", p.Name, opts.Scheme, err)
	}
	res := sys.Finalize()
	if err := sys.SanitizeErr(); err != nil {
		return res, fmt.Errorf("aos: workload %s under %v: %w", p.Name, opts.Scheme, err)
	}
	return res, nil
}
